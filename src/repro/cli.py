"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    cedar-repro list                 # what can be regenerated
    cedar-repro run table1           # one artifact
    cedar-repro run all              # everything (slow: cycle simulations)
    cedar-repro run table2 --json    # machine-readable result
    cedar-repro trace table2 --out trace.json --report
                                     # same artifact, plus machine-wide
                                     # instrumentation (Chrome trace JSON
                                     # and a utilization report)
"""

from __future__ import annotations

import argparse
import dataclasses
import difflib
import enum
import json
import sys
from typing import List, Optional

from repro.experiments.registry import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_traced,
)
from repro.trace import Tracer, utilization_report, write_chrome_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cedar-repro",
        description=(
            "Reproduction of 'The Cedar System and an Initial Performance "
            "Study' (ISCA 1993)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list regenerable tables/figures")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment key from 'list', or 'all'")
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON results (for benchmarking scripts)",
    )
    trace = sub.add_parser(
        "trace", help="run one experiment with machine-wide instrumentation"
    )
    trace.add_argument("experiment", help="experiment key from 'list'")
    trace.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace.add_argument(
        "--report",
        action="store_true",
        help="print the per-component utilization report",
    )
    return parser


def _unknown_experiment(key: str) -> int:
    """Error message with near-miss suggestions; returns the exit status."""
    message = f"unknown experiment {key!r}"
    matches = difflib.get_close_matches(key, sorted(EXPERIMENTS), n=3, cutoff=0.4)
    if matches:
        message += "; did you mean: " + ", ".join(matches) + "?"
    else:
        message += "; try 'cedar-repro list'"
    print(message, file=sys.stderr)
    return 2


def _json_key(key: object) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list)):
        return "/".join(str(part) for part in key)
    return str(key)


def _jsonable(value: object) -> object:
    """Best-effort conversion of experiment results to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if isinstance(value, dict):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _cmd_run(args: argparse.Namespace) -> int:
    keys = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for key in keys:
        if key not in EXPERIMENTS:
            return _unknown_experiment(key)
    if not args.json:
        for key in keys:
            print(run_experiment(key))
            print()
        return 0
    results = []
    for key in keys:
        experiment = EXPERIMENTS[key]
        result = experiment.run()
        results.append(
            {
                "experiment": key,
                "description": experiment.description,
                "result": _jsonable(result),
                "rendered": experiment.render(result),
            }
        )
    print(json.dumps(results, indent=2))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        return _unknown_experiment(args.experiment)
    if args.out:
        # Fail on an unwritable path now, not after a minutes-long run.
        try:
            open(args.out, "w", encoding="utf-8").close()
        except OSError as error:
            print(f"cannot write {args.out}: {error}", file=sys.stderr)
            return 2
    tracer = Tracer(enabled=True)
    print(run_experiment_traced(args.experiment, tracer))
    print()
    if args.out:
        write_chrome_trace(tracer, args.out)
        print(
            f"wrote {tracer.num_records} trace records"
            f" ({tracer.dropped} dropped) to {args.out}",
            file=sys.stderr,
        )
    if args.report or not args.out:
        print(utilization_report(tracer))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for key in sorted(EXPERIMENTS):
            print(f"{key:18s} {EXPERIMENTS[key].description}")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
