"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    cedar-repro list                 # what can be regenerated
    cedar-repro run table1           # one artifact
    cedar-repro run all              # everything (slow: cycle simulations)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cedar-repro",
        description=(
            "Reproduction of 'The Cedar System and an Initial Performance "
            "Study' (ISCA 1993)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list regenerable tables/figures")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment key from 'list', or 'all'")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for key in sorted(EXPERIMENTS):
            print(f"{key:18s} {EXPERIMENTS[key].description}")
        return 0
    if args.command == "run":
        keys = (
            sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        for key in keys:
            if key not in EXPERIMENTS:
                print(f"unknown experiment {key!r}; try 'cedar-repro list'",
                      file=sys.stderr)
                return 2
            print(run_experiment(key))
            print()
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
