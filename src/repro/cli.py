"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    cedar-repro list                 # what can be regenerated
    cedar-repro run table1           # one artifact
    cedar-repro run all              # everything (slow: cycle simulations)
    cedar-repro run all --json --out results.json
                                     # one aggregate JSON document
    cedar-repro trace table2 --out trace.json --report
                                     # same artifact, plus machine-wide
                                     # instrumentation (Chrome trace JSON
                                     # and a utilization report)
    cedar-repro bench                # full suite -> BENCH_<n>.json snapshot
                                     # + regression report vs the previous one
    cedar-repro bench --quick        # sub-minute subset (CI gate)
"""

from __future__ import annotations

import argparse
import dataclasses
import difflib
import enum
import json
import sys
from typing import List, Optional

from repro.errors import BenchError
from repro.experiments.registry import (
    EXPERIMENTS,
    QUICK_EXPERIMENTS,
    run_experiment,
    run_experiment_traced,
)
from repro.metrics import bench as bench_mod
from repro.trace import Tracer, utilization_report, write_chrome_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cedar-repro",
        description=(
            "Reproduction of 'The Cedar System and an Initial Performance "
            "Study' (ISCA 1993)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list regenerable tables/figures")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment key from 'list', or 'all'")
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON results (for benchmarking scripts)",
    )
    run.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write results to FILE instead of stdout (implies --json)",
    )
    trace = sub.add_parser(
        "trace", help="run one experiment with machine-wide instrumentation"
    )
    trace.add_argument("experiment", help="experiment key from 'list'")
    trace.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace.add_argument(
        "--report",
        action="store_true",
        help="print the per-component utilization report",
    )
    bench = sub.add_parser(
        "bench",
        help="run the experiment suite into a BENCH_<n>.json snapshot and "
        "compare against the previous snapshot",
    )
    bench.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment keys to bench (default: the full suite)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="bench only the sub-minute experiments (the CI gate)",
    )
    bench.add_argument(
        "--dir",
        default=".",
        metavar="DIR",
        help="directory holding BENCH_<n>.json snapshots (default: .)",
    )
    bench.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="snapshot output path (default: next BENCH_<n>.json in --dir)",
    )
    bench.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline snapshot to diff against (default: latest BENCH_* "
        "in --dir; 'none' skips the comparison)",
    )
    bench.add_argument(
        "--no-trace",
        action="store_true",
        help="skip simulator self-profiling timelines (fidelity metrics "
        "are still recorded)",
    )
    bench.add_argument(
        "--fidelity-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance before fidelity drift hard-fails "
        f"(default {bench_mod.DEFAULT_TOLERANCES['fidelity']:g})",
    )
    bench.add_argument(
        "--machine-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance for simulated-machine metrics "
        f"(default {bench_mod.DEFAULT_TOLERANCES['machine']:g})",
    )
    bench.add_argument(
        "--profile-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance before throughput drift warns "
        f"(default {bench_mod.DEFAULT_TOLERANCES['self_profile']:g})",
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings (throughput drift) too",
    )
    return parser


def _unknown_experiment(key: str) -> int:
    """Error message with near-miss suggestions; returns the exit status."""
    message = f"unknown experiment {key!r}"
    matches = difflib.get_close_matches(key, sorted(EXPERIMENTS), n=3, cutoff=0.4)
    if matches:
        message += "; did you mean: " + ", ".join(matches) + "?"
    else:
        message += "; try 'cedar-repro list'"
    print(message, file=sys.stderr)
    return 2


def _json_key(key: object) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list)):
        return "/".join(str(part) for part in key)
    return str(key)


def _jsonable(value: object) -> object:
    """Best-effort conversion of experiment results to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if isinstance(value, dict):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _cmd_run(args: argparse.Namespace) -> int:
    keys = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for key in keys:
        if key not in EXPERIMENTS:
            return _unknown_experiment(key)
    if not args.json and not args.out:
        for key in keys:
            print(run_experiment(key))
            print()
        return 0
    if args.out:
        try:  # fail on an unwritable path before the minutes-long runs
            open(args.out, "w", encoding="utf-8").close()
        except OSError as error:
            print(f"cannot write {args.out}: {error}", file=sys.stderr)
            return 2
    results = []
    for key in keys:
        if args.out:
            print(f"running {key} ...", file=sys.stderr)
        experiment = EXPERIMENTS[key]
        result = experiment.run()
        results.append(
            {
                "experiment": key,
                "description": experiment.description,
                "result": _jsonable(result),
                "rendered": experiment.render(result),
            }
        )
    document = json.dumps(results, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(document + "\n")
        print(f"wrote {len(results)} result(s) to {args.out}", file=sys.stderr)
    else:
        print(document)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        return _unknown_experiment(args.experiment)
    if args.out:
        # Fail on an unwritable path now, not after a minutes-long run.
        try:
            open(args.out, "w", encoding="utf-8").close()
        except OSError as error:
            print(f"cannot write {args.out}: {error}", file=sys.stderr)
            return 2
    tracer = Tracer(enabled=True)
    print(run_experiment_traced(args.experiment, tracer))
    print()
    if args.out:
        write_chrome_trace(tracer, args.out)
        print(
            f"wrote {tracer.num_records} trace records"
            f" ({tracer.dropped} dropped) to {args.out}",
            file=sys.stderr,
        )
    if args.report or not args.out:
        print(utilization_report(tracer))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.experiments and args.quick:
        print("give either experiment keys or --quick, not both", file=sys.stderr)
        return 2
    if args.quick:
        keys = list(QUICK_EXPERIMENTS)
    elif args.experiments:
        keys = list(args.experiments)
    else:
        keys = sorted(EXPERIMENTS)
    for key in keys:
        if key not in EXPERIMENTS:
            return _unknown_experiment(key)

    tolerances = {}
    if args.fidelity_tolerance is not None:
        tolerances["fidelity"] = args.fidelity_tolerance
    if args.machine_tolerance is not None:
        tolerances["machine"] = args.machine_tolerance
    if args.profile_tolerance is not None:
        tolerances["self_profile"] = args.profile_tolerance

    try:
        baseline = None
        if args.baseline != "none":
            baseline_path = args.baseline or bench_mod.latest_snapshot_path(
                args.dir
            )
            if baseline_path is not None:
                baseline = bench_mod.load_snapshot(baseline_path)
                print(f"baseline: {baseline_path}", file=sys.stderr)
            else:
                print(
                    f"no baseline snapshot in {args.dir}; recording only",
                    file=sys.stderr,
                )
        index = bench_mod.next_snapshot_index(args.dir)
        out_path = args.out or f"{args.dir.rstrip('/')}/BENCH_{index}.json"

        def progress(key: str) -> None:
            print(f"benching {key} ...", file=sys.stderr)

        snapshot = bench_mod.build_snapshot(
            keys, index, trace=not args.no_trace, progress=progress
        )
        bench_mod.save_snapshot(snapshot, out_path)
    except (BenchError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"wrote snapshot {index} ({len(keys)} experiment(s)) to {out_path}")
    if baseline is None:
        return 0
    report = bench_mod.compare_snapshots(baseline, snapshot, tolerances)
    print(report.render())
    return report.exit_code(strict=args.strict)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for key in sorted(EXPERIMENTS):
            print(f"{key:18s} {EXPERIMENTS[key].description}")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
