"""Structured metrics on top of the trace bus, and the bench flight recorder.

* :mod:`repro.metrics.registry` -- labeled counters, gauges, log-bucketed
  histograms in a :class:`MetricsRegistry`.
* :mod:`repro.metrics.collector` -- drain finished-run tracers and
  performance monitors into a registry.
* :mod:`repro.metrics.export` -- Prometheus text exposition (+ parser) and
  JSONL exporters.
* :mod:`repro.metrics.headline` -- the per-experiment declared metrics
  (measured vs paper targets).
* :mod:`repro.metrics.bench` -- ``BENCH_<n>.json`` snapshots and the
  regression comparator behind ``cedar-repro bench``.
"""

from repro.metrics.headline import HeadlineMetric, slugify
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flat_series_name,
)
from repro.metrics.collector import (
    MonitorCatcher,
    collect_monitor,
    collect_sanitizer,
    collect_tracer,
)
from repro.metrics.export import (
    jsonl_lines,
    parse_prometheus,
    prometheus_text,
    write_jsonl,
)
from repro.metrics.bench import (
    DEFAULT_TOLERANCES,
    Finding,
    RegressionReport,
    bench_experiment,
    build_snapshot,
    compare_snapshots,
    existing_snapshots,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_index,
    save_snapshot,
)

__all__ = [
    "HeadlineMetric",
    "slugify",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flat_series_name",
    "MonitorCatcher",
    "collect_monitor",
    "collect_sanitizer",
    "collect_tracer",
    "jsonl_lines",
    "parse_prometheus",
    "prometheus_text",
    "write_jsonl",
    "DEFAULT_TOLERANCES",
    "Finding",
    "RegressionReport",
    "bench_experiment",
    "build_snapshot",
    "compare_snapshots",
    "existing_snapshots",
    "latest_snapshot_path",
    "load_snapshot",
    "next_snapshot_index",
    "save_snapshot",
]
