"""The perf/fidelity flight recorder behind ``cedar-repro bench``.

One bench run executes a set of experiments, records three sections per
experiment into a schema-versioned ``BENCH_<n>.json`` snapshot:

* **fidelity** -- the experiment's declared headline metrics (measured vs
  paper-quoted targets, see :mod:`repro.metrics.headline`);
* **machine** -- simulated-machine measurements drained from the trace bus
  and performance monitors (busy cycles, counter totals, Table 2 histogram
  summaries);
* **self_profile** -- measurements of the *simulator itself* (wall-clock,
  events processed, events/sec, per-component busy-cycle attribution), in
  the spirit of throughput-first simulator evaluations.

Given a prior snapshot, :func:`compare_snapshots` produces a regression
report with noise-aware, per-class relative tolerances:

* ``fidelity`` drift **hard-fails** -- the simulation is deterministic, so
  any change beyond the (tight) tolerance means the reproduction moved;
* ``machine`` drift **fails** by default too (event counts and busy cycles
  are deterministic), under its own tolerance;
* ``self_profile`` drift only **warns**, direction-aware (slower wall
  clock or lower events/sec), because wall-clock is host noise.

Severity of a finding maps to the CLI exit code: any ``fail`` finding
exits non-zero so CI can gate on it.
"""

from __future__ import annotations

import gc
import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import BenchError
from repro.metrics.collector import MonitorCatcher, collect_tracer
from repro.metrics.registry import MetricsRegistry
from repro.parallel import parallel_map
from repro.trace import Tracer, tracing
from repro.version import version_fingerprint

SCHEMA = "cedar-repro-bench"
SCHEMA_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: (relative tolerance, severity, direction) per metric class.  Direction
#: ``0`` flags movement either way; ``+1`` flags decreases (higher is
#: better); ``-1`` flags increases (lower is better).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "fidelity": 1e-6,
    "machine": 1e-6,
    "self_profile": 0.5,
}

#: Which self-profile series are compared, and which way is worse.
_PROFILE_DIRECTION: Dict[str, int] = {
    "wall_seconds": -1,          # more seconds = slower simulator
    "events_per_sec": +1,        # fewer events/sec = slower simulator
    "trace_overhead_ratio": -1,  # larger share of wall in instrumentation
    # Partitioned-execution throughput (``bench --partitions N``); absent
    # from older snapshots, so first appearance diffs as an info finding.
    "partitioned_events_per_sec": +1,
}


# ---------------------------------------------------------------------------
# Running experiments into a snapshot
# ---------------------------------------------------------------------------


def _component_group(component: str) -> str:
    return component.split(".", 1)[0]


def bench_experiment(key: str, trace: bool = True) -> Dict[str, object]:
    """Run one experiment and build its snapshot section.

    With ``trace=False`` the run skips timeline recording (zero-overhead
    path); fidelity metrics are computed from the result alone, so the
    section is still complete minus the bus-derived machine series.
    """
    # Imported here, not at module top: experiments.registry imports
    # repro.metrics.headline, so a top-level import would be circular.
    from repro.experiments.registry import get_experiment

    experiment = get_experiment(key)
    tracer = Tracer(enabled=trace)
    catcher = MonitorCatcher(tracer)
    # Pause the cyclic garbage collector around the timed region (the same
    # policy as ``timeit``): reference counting still reclaims everything
    # acyclic immediately, while collector pauses -- which otherwise fire
    # thousands of times across a multi-million-event run -- stop eating
    # into the measured simulator throughput.  The deferred full collect
    # below runs outside the timing and bounds memory between experiments.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        with tracing(tracer):
            result = experiment.run()
        wall_seconds = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()

    fidelity = [metric.as_dict() for metric in experiment.headline(result)]

    registry = MetricsRegistry()
    collect_tracer(registry, tracer)
    catcher.collect_into(registry)
    machine = registry.as_flat_dict()

    busy = tracer.busy_cycles()
    totals = tracer.counter_totals()
    events = sum(
        counters.get("events_dispatched", 0) for counters in totals.values()
    )
    profile: Dict[str, object] = {"wall_seconds": wall_seconds}
    if events:
        profile["events_processed"] = events
        profile["events_per_sec"] = events / wall_seconds if wall_seconds else 0.0
    skipped = totals.get("engine", {}).get("idle_cycles_skipped", 0)
    if skipped:
        profile["idle_cycles_skipped"] = skipped
    if trace and tracer.records_seen:
        # Share of wall-clock spent appending trace records (calibrated
        # per store class, outside the timed region above).
        overhead = tracer.overhead_estimate(wall_seconds)
        profile["trace_records"] = tracer.records_seen
        profile["trace_overhead_ratio"] = overhead["ratio"]
        profile["trace_per_record_ns"] = overhead["per_record_ns"]
    if busy:
        total_busy = sum(busy.values())
        by_group: Dict[str, int] = {}
        for component, cycles in busy.items():
            group = _component_group(component)
            by_group[group] = by_group.get(group, 0) + cycles
        profile["component_busy_share"] = {
            group: by_group[group] / total_busy for group in sorted(by_group)
        }
    return {
        "description": experiment.description,
        "fidelity": fidelity,
        "machine": machine,
        "self_profile": profile,
    }


def _bench_worker(task: Tuple[str, bool]) -> Dict[str, object]:
    """Worker-process entry: run one experiment, return its section."""
    key, trace = task
    return bench_experiment(key, trace=trace)


def partitioned_profile(
    key: str, partitions: int, events: Optional[float] = None
) -> Optional[Dict[str, object]]:
    """Time one experiment under partitioned execution (``--partitions N``).

    Returns the extra ``self_profile`` keys, or ``None`` for experiments
    without a unit decomposition (nothing to shard).  When ``events`` is
    given (the deterministic ``events_processed`` count from the normal
    bench run of the same experiment), the timed pass runs fully
    *uninstrumented* -- tracers disabled, nothing on the hot path -- and
    the rate is ``events / wall``: the partitioned fast path measured the
    same way the engine would run with recording off.  Without an event
    count the pass falls back to the small-ring telemetry tracers and
    their exact counter totals.  Either way fidelity and machine sections
    still come from the normal run and cannot drift.
    """
    from repro.experiments.registry import get_experiment
    from repro.partition import run_partitioned

    if get_experiment(key).units is None:
        return None
    run = run_partitioned(
        key, partitions, traced=False, instrumented=events is None
    )
    telemetry = run.telemetry
    wall = float(telemetry["wall_seconds"])
    if events is None:
        rate = telemetry["events_per_sec"]
    else:
        rate = float(events) / wall if wall > 0 else 0.0
    return {
        "partitions": partitions,
        "partitioned_events_per_sec": rate,
        "partitioned_wall_seconds": wall,
        "partitioned_barrier_stall_seconds": max(
            stat["barrier_stall_seconds"]
            for stat in telemetry["partition_stats"]
        ),
        # Per-partition detail; a list, so the drift checker (numeric
        # series only) records but never compares it.
        "partition_stats": telemetry["partition_stats"],
    }


def build_snapshot(
    keys: Sequence[str],
    snapshot_index: int,
    trace: bool = True,
    progress=None,
    jobs: int = 1,
    partitions: Optional[int] = None,
) -> Dict[str, object]:
    """Run ``keys`` and assemble the full snapshot document.

    With ``jobs > 1`` experiments run in worker processes.  Each experiment
    is independent (its own engine, tracer and monitors), and sections are
    assembled in the caller's key order -- never completion order -- so the
    snapshot is byte-identical for any job count, modulo the wall-clock
    numbers in ``self_profile``.

    With ``partitions``, every unit-decomposable experiment gets an extra
    partitioned timed pass (run in this process, *after* the normal runs:
    partitioned execution forks its own shard workers, which the daemonic
    ``--jobs`` children may not) whose throughput lands in
    ``self_profile`` next to the single-process numbers.
    """
    experiments: Dict[str, object] = {}
    if jobs > 1 and len(keys) > 1:
        sections = {}
        tasks = [(key, (key, trace)) for key in keys]
        for key, section in parallel_map(
            _bench_worker, tasks, jobs=min(jobs, len(keys))
        ):
            if progress is not None:
                progress(key)
            sections[key] = section
        for key in keys:  # deterministic order regardless of completion
            experiments[key] = sections[key]
    else:
        for key in keys:
            if progress is not None:
                progress(key)
            experiments[key] = bench_experiment(key, trace=trace)
    if partitions is not None and partitions > 1:
        from repro.experiments.registry import get_experiment

        for key in keys:
            if get_experiment(key).units is None:
                continue
            if progress is not None:
                progress(f"{key} [partitioned x{partitions}]")
            events = experiments[key]["self_profile"].get("events_processed")
            extra = partitioned_profile(key, partitions, events=events)
            if extra is not None:
                experiments[key]["self_profile"].update(extra)
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "snapshot": snapshot_index,
        "traced": trace,
        "code_version": version_fingerprint(),
        "experiments": experiments,
    }
    if partitions is not None:
        document["partitions"] = partitions
    return document


# ---------------------------------------------------------------------------
# Snapshot files: BENCH_<n>.json numbering, load/save
# ---------------------------------------------------------------------------


def existing_snapshots(directory: str) -> List[Tuple[int, str]]:
    """Sorted (index, path) pairs of the BENCH_*.json files in a directory."""
    found = []
    try:
        entries = sorted(os.listdir(directory))
    except FileNotFoundError:
        raise BenchError(f"snapshot directory {directory!r} does not exist")
    for entry in entries:
        match = _SNAPSHOT_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, entry)))
    return sorted(found)


def latest_snapshot_path(directory: str) -> Optional[str]:
    snapshots = existing_snapshots(directory)
    return snapshots[-1][1] if snapshots else None


def next_snapshot_index(directory: str) -> int:
    snapshots = existing_snapshots(directory)
    return snapshots[-1][0] + 1 if snapshots else 0


def load_snapshot(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            snapshot = json.load(stream)
    except (OSError, ValueError) as error:
        raise BenchError(f"cannot load snapshot {path}: {error}") from None
    if not isinstance(snapshot, dict) or snapshot.get("schema") != SCHEMA:
        raise BenchError(f"{path} is not a {SCHEMA} snapshot")
    version = snapshot.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BenchError(
            f"{path} has schema version {version!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    return snapshot


def save_snapshot(snapshot: Mapping[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(snapshot, stream, indent=2, sort_keys=True)
        stream.write("\n")


# ---------------------------------------------------------------------------
# Regression comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One compared metric that moved (or appeared/disappeared)."""

    experiment: str
    metric: str
    metric_class: str            # fidelity | machine | self_profile
    severity: str                # fail | warn | info
    baseline: Optional[float]
    current: Optional[float]
    rel_change: Optional[float]  # signed (current-baseline)/|baseline|

    def describe(self) -> str:
        if self.baseline is None:
            return (
                f"{self.experiment}/{self.metric}: new metric "
                f"(now {self.current:g})"
            )
        if self.current is None:
            return (
                f"{self.experiment}/{self.metric}: metric disappeared "
                f"(was {self.baseline:g})"
            )
        percent = (self.rel_change or 0.0) * 100.0
        return (
            f"{self.experiment}/{self.metric} [{self.metric_class}]: "
            f"{self.baseline:g} -> {self.current:g} ({percent:+.2f}%)"
        )


@dataclass
class RegressionReport:
    """All findings of one baseline-vs-current comparison."""

    baseline_snapshot: int
    current_snapshot: int
    compared: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def failures(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def exit_code(self, strict: bool = False) -> int:
        if self.failures:
            return 1
        if strict and self.warnings:
            return 3
        return 0

    def render(self) -> str:
        lines = [
            f"Regression report: snapshot {self.baseline_snapshot} -> "
            f"{self.current_snapshot}, {self.compared} metric(s) compared: "
            f"{len(self.failures)} failure(s), {len(self.warnings)} warning(s)"
        ]
        for title, group in (
            ("FAIL", self.failures),
            ("WARN", self.warnings),
            ("info", [f for f in self.findings if f.severity == "info"]),
        ):
            for finding in group:
                lines.append(f"  {title}  {finding.describe()}")
        if not self.findings:
            lines.append("  no drift beyond tolerance")
        return "\n".join(lines)


def _relative_change(baseline: float, current: float) -> float:
    if baseline == current:
        return 0.0
    return (current - baseline) / max(abs(baseline), 1e-12)


def _compare_class(
    report: RegressionReport,
    experiment: str,
    metric_class: str,
    severity: str,
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    tolerance: float,
    directions: Optional[Mapping[str, int]] = None,
) -> None:
    for name in sorted(set(baseline) | set(current)):
        if directions is not None and name not in directions:
            continue
        old = baseline.get(name)
        new = current.get(name)
        if old is None or new is None:
            report.findings.append(
                Finding(experiment, name, metric_class, "info", old, new, None)
            )
            continue
        report.compared += 1
        rel = _relative_change(old, new)
        if abs(rel) <= tolerance:
            continue
        direction = 0 if directions is None else directions[name]
        regressed = (
            direction == 0
            or (direction > 0 and rel < 0)
            or (direction < 0 and rel > 0)
        )
        report.findings.append(
            Finding(
                experiment,
                name,
                metric_class,
                severity if regressed else "info",
                old,
                new,
                rel,
            )
        )


def _fidelity_values(section: Mapping[str, object]) -> Dict[str, float]:
    values = {}
    for metric in section.get("fidelity", []):
        values[str(metric["name"])] = float(metric["value"])
    return values


def _numeric(mapping: Mapping[str, object]) -> Dict[str, float]:
    return {
        k: float(v)
        for k, v in mapping.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def compare_snapshots(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    tolerances: Optional[Mapping[str, float]] = None,
) -> RegressionReport:
    """Diff two snapshots metric-by-metric under per-class tolerances.

    Only experiments present in both snapshots are compared, so a
    ``--quick`` run diffs cleanly against a full baseline.  Metrics present
    on one side only are reported as informational findings.
    """
    tol = dict(DEFAULT_TOLERANCES)
    tol.update(tolerances or {})
    report = RegressionReport(
        baseline_snapshot=int(baseline.get("snapshot", -1)),
        current_snapshot=int(current.get("snapshot", -1)),
    )
    base_experiments = baseline.get("experiments", {})
    cur_experiments = current.get("experiments", {})
    for key in sorted(set(base_experiments) & set(cur_experiments)):
        base_section = base_experiments[key]
        cur_section = cur_experiments[key]
        _compare_class(
            report, key, "fidelity", "fail",
            _fidelity_values(base_section), _fidelity_values(cur_section),
            tol["fidelity"],
        )
        _compare_class(
            report, key, "machine", "fail",
            _numeric(base_section.get("machine", {})),
            _numeric(cur_section.get("machine", {})),
            tol["machine"],
        )
        _compare_class(
            report, key, "self_profile", "warn",
            _numeric(base_section.get("self_profile", {})),
            _numeric(cur_section.get("self_profile", {})),
            tol["self_profile"],
            directions=_PROFILE_DIRECTION,
        )
    return report
