"""Registry exporters: Prometheus text exposition and JSONL.

The paper moved monitoring data "to workstations for analysis"; these are
our wire formats.  :func:`prometheus_text` emits the Prometheus text
exposition format (counters get a ``_total`` suffix if missing, histograms
become cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``);
:func:`parse_prometheus` is a minimal reader used to round-trip the
exporter in tests and to diff exported files.  :func:`jsonl_lines` emits
one self-describing JSON object per series for log pipelines.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterator, List, Tuple

from repro.errors import MetricsError
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    Labels,
    MetricsRegistry,
    flat_series_name,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Labels, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    by_name: Dict[str, List[object]] = {}
    for instrument in registry:
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: List[str] = []
    for name in sorted(by_name):
        instruments = by_name[name]
        kind = registry.kind(name)
        exposed = name
        if kind == "counter" and not exposed.endswith("_total"):
            exposed += "_total"
        help_text = registry.help_text(name)
        if help_text:
            lines.append(f"# HELP {exposed} {help_text}")
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}[kind]
        lines.append(f"# TYPE {exposed} {prom_type}")
        for instrument in instruments:
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{exposed}{_format_labels(instrument.labels)} "
                    f"{_format_value(instrument.value)}"
                )
            else:
                assert isinstance(instrument, Histogram)
                cumulative = 0
                for index in sorted(instrument.buckets):
                    cumulative += instrument.buckets[index]
                    le = _format_value(instrument.bucket_upper_bound(index))
                    lines.append(
                        f"{exposed}_bucket"
                        f"{_format_labels(instrument.labels, (('le', le),))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{exposed}_bucket"
                    f"{_format_labels(instrument.labels, (('le', '+Inf'),))} "
                    f"{instrument.count}"
                )
                lines.append(
                    f"{exposed}_sum{_format_labels(instrument.labels)} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{exposed}_count{_format_labels(instrument.labels)} "
                    f"{instrument.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ESCAPE_RE = re.compile(r"\\(.)")
_ESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape(value: str) -> str:
    # Single pass over escape sequences.  Chained str.replace calls corrupt
    # values where one replacement manufactures another's pattern: the
    # two-character value `\` + `n` escapes to `\\n`, which a leading
    # replace(r"\n", "\n") would turn into `\` + newline.  With /metrics
    # serving externally supplied config strings as labels, such values are
    # reachable from the wire, not just from tests.
    return _ESCAPE_RE.sub(
        lambda match: _ESCAPES.get(match.group(1), "\\" + match.group(1)),
        value,
    )


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{name{k=v,...}: value}``.

    A deliberately small subset (no exemplars, no timestamps) sufficient to
    round-trip :func:`prometheus_text`; raises :class:`MetricsError` on any
    line it cannot understand, so tests catch malformed output.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricsError(f"unparseable exposition line: {line!r}")
        labels_text = match.group("labels")
        labels: List[Tuple[str, str]] = []
        if labels_text:
            consumed = 0
            for label_match in _LABEL_RE.finditer(labels_text):
                labels.append(
                    (label_match.group(1), _unescape(label_match.group(2)))
                )
                consumed = label_match.end()
            remainder = labels_text[consumed:].strip().strip(",")
            if remainder:
                raise MetricsError(
                    f"unparseable label fragment {remainder!r} in {line!r}"
                )
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise MetricsError(f"unparseable sample value {raw!r}") from None
        key = flat_series_name(match.group("name"), tuple(sorted(labels)))
        samples[key] = value
    return samples


def jsonl_lines(registry: MetricsRegistry) -> Iterator[str]:
    """One JSON object per series: kind, name, labels, and the payload."""
    for instrument in registry:
        record: Dict[str, object] = {
            "kind": registry.kind(instrument.name),
            "name": instrument.name,
            "labels": dict(instrument.labels),
        }
        if isinstance(instrument, (Counter, Gauge)):
            record["value"] = instrument.value
        else:
            assert isinstance(instrument, Histogram)
            record["count"] = instrument.count
            record["sum"] = instrument.sum
            record["min"] = instrument.min
            record["max"] = instrument.max
            record["buckets"] = {
                _format_value(instrument.bucket_upper_bound(index)): count
                for index, count in sorted(instrument.buckets.items())
            }
        yield json.dumps(record, sort_keys=True)


def write_jsonl(registry: MetricsRegistry, path: str) -> int:
    """Write the registry as JSONL; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as stream:
        for line in jsonl_lines(registry):
            stream.write(line + "\n")
            count += 1
    return count
