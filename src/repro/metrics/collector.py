"""Drain finished-run instrumentation into a :class:`MetricsRegistry`.

Three sources, mirroring the paper's three measurement paths:

* the trace bus (:class:`repro.trace.Tracer`): counter totals, span
  busy-cycles, elapsed cycles, record/drop accounting;
* the paper-faithful :class:`repro.hardware.monitor.PerformanceMonitor`
  histogrammers (Table 2's first-word latency and interarrival);
* arbitrary driver-side values (fidelity numbers, wall-clock), which the
  caller writes straight into the registry.

Collection is strictly post-run and read-only: nothing here changes what a
tracer or monitor recorded, and a *disabled* tracer (no timeline) simply
contributes nothing -- the registry never requires a recording tracer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.monitor import PerformanceMonitor
from repro.metrics.registry import MetricsRegistry
from repro.trace.tracer import Tracer


def collect_tracer(registry: MetricsRegistry, tracer: Tracer) -> None:
    """Fold one tracer's exact aggregates into ``registry``.

    Counter totals become ``sim_counter_total`` series labeled by component
    and counter name; span busy-cycles and counts become per-component
    gauges; elapsed cycles, record and drop counts describe the run itself.
    A disabled tracer holds no aggregates and contributes nothing.
    """
    for component, counters in tracer.counter_totals().items():
        for name, value in counters.items():
            registry.counter(
                "sim_counter_total",
                {"component": component, "counter": name},
                help="trace-bus counter totals per component",
            ).inc(value)
    span_counts = tracer.span_counts()
    for component, cycles in sorted(tracer.busy_cycles().items()):
        registry.gauge(
            "sim_busy_cycles",
            {"component": component},
            help="span busy-cycles per component",
        ).set(cycles)
        registry.gauge(
            "sim_span_count",
            {"component": component},
            help="spans recorded per component",
        ).set(span_counts.get(component, 0))
    elapsed = tracer.elapsed_by_epoch()
    if elapsed:
        registry.gauge(
            "sim_wall_cycles",
            help="sum of per-epoch elapsed cycles across machine runs",
        ).set(sum(elapsed.values()))
        registry.gauge(
            "sim_machine_runs", help="tracer epochs (machine instances)"
        ).set(len(elapsed))
    if tracer.num_records or tracer.dropped:
        registry.gauge(
            "sim_trace_records", help="timeline records retained"
        ).set(tracer.num_records)
        registry.gauge(
            "sim_trace_dropped", help="timeline records dropped at capacity"
        ).set(tracer.dropped)
        for kind, count in sorted(tracer.record_counts().items()):
            registry.gauge(
                "sim_trace_kind_records",
                {"kind": kind},
                help="timeline records retained per record kind",
            ).set(count)
        registry.gauge(
            "sim_trace_buffer_bytes",
            help="record-store bytes (columnar ring capacity, or the "
                 "object store's nominal per-record estimate)",
        ).set(tracer.buffer_bytes)
        if tracer.columnar:
            registry.gauge(
                "sim_trace_interned_strings",
                help="distinct component/name strings in the interning table",
            ).set(tracer.interned_strings)


def collect_monitor(
    registry: MetricsRegistry,
    monitor: PerformanceMonitor,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Fold one performance monitor's instruments into ``registry``.

    Each non-empty histogrammer contributes count/mean/p90/max gauges
    labeled with the histogram name; event tracers contribute captured and
    dropped event counts.
    """
    base = dict(labels or {})
    for name, summary in monitor.histogram_summaries().items():
        series = dict(base, histogram=name)
        registry.gauge(
            "monitor_histogram_count", series,
            help="samples captured per hardware histogrammer",
        ).set(summary["count"])
        if summary["count"]:
            registry.gauge(
                "monitor_histogram_mean", series,
                help="mean of each hardware histogrammer",
            ).set(summary["mean"])
            registry.gauge(
                "monitor_histogram_p90", series,
                help="90th-percentile bin value per histogrammer",
            ).set(summary["p90"])
            registry.gauge(
                "monitor_histogram_max", series,
                help="largest populated bin value per histogrammer",
            ).set(summary["max"])
    for name, counts in monitor.tracer_summaries().items():
        series = dict(base, tracer=name)
        registry.gauge(
            "monitor_tracer_events", series,
            help="events captured per hardware event tracer",
        ).set(counts["events"])
        registry.gauge(
            "monitor_tracer_dropped", series,
            help="events dropped per hardware event tracer",
        ).set(counts["dropped"])


def collect_sanitizer(registry: MetricsRegistry, sanitizer) -> None:
    """Fold one :class:`repro.hardware.sanitize.Sanitizer` into ``registry``.

    Per-invariant check counts become ``sanitizer_checks_total`` counters;
    the violation count (0 on any run that reached collection, since a
    violation raises) becomes a gauge.
    """
    for invariant, count in sorted(sanitizer.checks.items()):
        registry.counter(
            "sanitizer_checks_total",
            {"invariant": invariant},
            help="invariant checks performed per sanitizer class",
        ).inc(count)
    registry.gauge(
        "sanitizer_violations",
        help="invariant violations raised (0 for a completed run)",
    ).set(sanitizer.violations)


class MonitorCatcher:
    """Collects every :class:`PerformanceMonitor` that connects to a bus.

    Experiment drivers build machines (and their monitors) internally; the
    bench harness subscribes this catcher to the ambient tracer *before*
    the run, then drains each caught monitor afterwards.  Connection
    announcements ride the always-on publish/subscribe side of the bus, so
    catching works even when timeline recording is disabled.
    """

    def __init__(self, bus: Tracer) -> None:
        self.monitors: List[PerformanceMonitor] = []
        bus.subscribe(PerformanceMonitor.CONNECTED_SIGNAL, self._on_connect)

    def _on_connect(self, monitor: object) -> None:
        if isinstance(monitor, PerformanceMonitor):
            self.monitors.append(monitor)

    def collect_into(self, registry: MetricsRegistry) -> int:
        """Drain all caught monitors; returns how many were drained."""
        for index, monitor in enumerate(self.monitors):
            collect_monitor(registry, monitor, {"monitor": str(index)})
        return len(self.monitors)
