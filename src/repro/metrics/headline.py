"""Headline metrics: what each experiment declares it is measuring.

Every experiment driver exposes a ``headline_metrics(result)`` function
returning a list of :class:`HeadlineMetric` -- the handful of numbers that
*are* that table or figure, each optionally paired with the paper-quoted
target it reproduces.  The bench harness snapshots these as the fidelity
section of ``BENCH_<n>.json``: measured values are diffed snapshot-to-
snapshot (fidelity drift hard-fails), and the paper targets give every
snapshot a self-contained measured-vs-paper column.

Metric names are a stable public interface: renaming one orphans its
history in every existing snapshot, so prefer adding metrics to renaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class HeadlineMetric:
    """One declared measurement of an experiment.

    Attributes:
        name: Stable snake_case identifier, unique within the experiment.
        value: The measured value from this run.
        unit: Unit label (``"MFLOPS"``, ``"cycles"``, ``"codes"``, ...).
        target: The paper-quoted value, where the scan is legible; ``None``
            for metrics the paper states only qualitatively.
        note: Short provenance note (which table cell / quote this is).
    """

    name: str
    value: float
    unit: str = ""
    target: Optional[float] = None
    note: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        """|measured - target| / |target|, when a paper target exists."""
        if self.target is None or self.target == 0:
            return None
        return abs(self.value - self.target) / abs(self.target)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "target": self.target,
        }
        if self.target is not None:
            record["relative_error"] = self.relative_error
        if self.note:
            record["note"] = self.note
        return record


def slugify(text: str) -> str:
    """A metric-name-safe fragment from a free-form label."""
    out = []
    for ch in text.lower():
        out.append(ch if ch.isalnum() else "_")
    slug = "".join(out)
    while "__" in slug:
        slug = slug.replace("__", "_")
    return slug.strip("_")
