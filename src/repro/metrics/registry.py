"""A structured metrics layer above the raw trace bus.

The trace bus (:mod:`repro.trace`) is the cabling: components report raw
counters, spans, and instants with no schema.  This module is the
workstation-side *instrument panel* built on top of it: a
:class:`MetricsRegistry` holding named, labeled instruments --

* :class:`Counter` -- monotonically increasing totals (events dispatched,
  packets injected);
* :class:`Gauge` -- last-written values (MFLOPS of a run, utilization of a
  subsystem, a fidelity error against a paper target);
* :class:`Histogram` -- log-bucketed distributions (latencies,
  interarrival gaps), mirroring the paper's 64K-counter histogrammers but
  with exponential bins so one instrument spans nanoseconds to minutes.

Labels follow the Prometheus data model: an instrument name plus a sorted
``(key, value)`` label set identify one time series.  The registry itself
is passive storage -- it never requires a recording tracer, so fidelity
metrics exist even for tracing-disabled runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MetricsError

Labels = Tuple[Tuple[str, str], ...]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_REST = _NAME_START | set("0123456789")


def _validate_name(name: str) -> str:
    if not name or name[0] not in _NAME_START or any(
        c not in _NAME_REST for c in name
    ):
        raise MetricsError(
            f"invalid metric name {name!r}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def canonical_labels(labels: Optional[Mapping[str, object]]) -> Labels:
    """Sorted, stringified label pairs -- the identity of a time series."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    def inc(self, delta: float = 1.0) -> float:
        if delta < 0:
            raise MetricsError(
                f"counter {self.name} cannot decrease (delta {delta})"
            )
        self.value += delta
        return self.value


@dataclass
class Gauge:
    """A value that can go anywhere; remembers only the last write."""

    name: str
    labels: Labels = ()
    value: float = 0.0
    _written: bool = False

    def set(self, value: float) -> float:
        if not math.isfinite(value):
            raise MetricsError(f"gauge {self.name} set to non-finite {value!r}")
        self.value = float(value)
        self._written = True
        return self.value

    def add(self, delta: float) -> float:
        return self.set(self.value + delta)


class Histogram:
    """A log-bucketed histogram: bucket ``i`` covers ``[base**i, base**(i+1))``.

    Values below 1 (including 0) land in a dedicated underflow bucket at
    index ``-1``; exact totals (count, sum, min, max) are kept alongside so
    means are not quantized by the bucketing.
    """

    def __init__(self, name: str, labels: Labels = (), base: float = 2.0) -> None:
        if base <= 1.0:
            raise MetricsError(f"histogram base must be > 1, got {base}")
        self.name = name
        self.labels = labels
        self.base = base
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def bucket_index(self, value: float) -> int:
        if value < 1.0:
            return -1
        return int(math.log(value, self.base))

    def observe(self, value: float) -> None:
        if value < 0:
            raise MetricsError(
                f"histogram {self.name} observed negative value {value}"
            )
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def bucket_upper_bound(self, index: int) -> float:
        """Exclusive upper edge of bucket ``index`` (1.0 for the underflow)."""
        return self.base ** (index + 1) if index >= 0 else 1.0

    def mean(self) -> float:
        if self.count == 0:
            raise MetricsError(f"histogram {self.name} is empty")
        return self.sum / self.count

    def quantile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the given cumulative fraction."""
        if not 0 < fraction <= 1:
            raise MetricsError(f"fraction must be in (0, 1], got {fraction}")
        if self.count == 0:
            raise MetricsError(f"histogram {self.name} is empty")
        target = fraction * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return self.bucket_upper_bound(index)
        raise AssertionError("unreachable: cumulative covers count")


Instrument = object  # Counter | Gauge | Histogram


class MetricsRegistry:
    """All instruments of one run, addressable by (name, labels).

    ``counter`` / ``gauge`` / ``histogram`` get-or-create; a name used for
    one instrument kind cannot be reused for another.  Optional per-name
    help strings feed the Prometheus ``# HELP`` lines.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], Instrument] = {}
        self._kinds: Dict[str, type] = {}
        self._help: Dict[str, str] = {}

    def _get(self, cls, name: str, labels: Optional[Mapping[str, object]],
             help: Optional[str]):
        _validate_name(name)
        known = self._kinds.get(name)
        if known is not None and known is not cls:
            raise MetricsError(
                f"metric {name!r} already registered as {known.__name__}, "
                f"cannot reuse as {cls.__name__}"
            )
        self._kinds[name] = cls
        if help:
            self._help[name] = help
        key = (name, canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None,
                help: Optional[str] = None) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None,
              help: Optional[str] = None) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str, labels: Optional[Mapping[str, object]] = None,
                  help: Optional[str] = None) -> Histogram:
        return self._get(Histogram, name, labels, help)

    def help_text(self, name: str) -> Optional[str]:
        return self._help.get(name)

    def kind(self, name: str) -> Optional[str]:
        cls = self._kinds.get(name)
        return cls.__name__.lower() if cls else None

    def __iter__(self) -> Iterator[Instrument]:
        """Instruments in deterministic (name, labels) order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._kinds)

    def get(self, name: str, labels: Optional[Mapping[str, object]] = None
            ) -> Optional[Instrument]:
        """Look up one series without creating it."""
        return self._instruments.get((name, canonical_labels(labels)))

    def series(self, name: str) -> List[Instrument]:
        """Every labeled series registered under ``name``."""
        return [
            inst for (n, _), inst in sorted(self._instruments.items()) if n == name
        ]

    def as_flat_dict(self) -> Dict[str, float]:
        """{`name{k=v,...}`: value} for counters and gauges (histograms are
        flattened to _count/_sum/_min/_max/_mean series) -- the form the
        bench snapshot stores and diffs."""
        flat: Dict[str, float] = {}
        for instrument in self:
            key = flat_series_name(instrument.name, instrument.labels)
            if isinstance(instrument, (Counter, Gauge)):
                flat[key] = instrument.value
            else:
                assert isinstance(instrument, Histogram)
                flat[key + "_count"] = float(instrument.count)
                flat[key + "_sum"] = instrument.sum
                if instrument.count:
                    flat[key + "_min"] = float(instrument.min)
                    flat[key + "_max"] = float(instrument.max)
                    flat[key + "_mean"] = instrument.mean()
        return flat


def flat_series_name(name: str, labels: Labels) -> str:
    """``name{k=v,...}`` -- one stable string key per series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"
