"""Registry mapping paper artifact ids to experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.trace import Tracer, tracing

from repro.experiments import (
    figure3,
    network_ablation,
    ppt4_scalability,
    ppt5_scaling,
    restructuring,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact of the paper."""

    key: str
    description: str
    run: Callable[[], object]
    render: Callable[[object], str]


EXPERIMENTS: Dict[str, Experiment] = {
    e.key: e
    for e in (
        Experiment(
            "table1",
            "MFLOPS for rank-64 update (GM/no-pref, GM/pref, GM/cache)",
            table1.run,
            table1.render,
        ),
        Experiment(
            "table2",
            "Global memory latency/interarrival for VL/TM/RK/CG",
            table2.run,
            table2.render,
        ),
        Experiment(
            "table3",
            "Perfect Benchmarks: times, MFLOPS, speed improvements",
            table3.run,
            table3.render,
        ),
        Experiment(
            "table4",
            "Manually optimized Perfect codes",
            table4.run,
            table4.render,
        ),
        Experiment(
            "table5",
            "Instability In(13, e) on Cedar, Cray 1, Y-MP/8",
            table5.run,
            table5.render,
        ),
        Experiment(
            "table6",
            "Restructuring efficiency bands (PPT3)",
            table6.run,
            table6.render,
        ),
        Experiment(
            "figure3",
            "YMP/8 vs Cedar efficiency scatter (manual codes)",
            figure3.run,
            figure3.render,
        ),
        Experiment(
            "ppt4",
            "Scalability: Cedar CG vs CM-5 banded matvec",
            ppt4_scalability.run,
            ppt4_scalability.render,
        ),
        Experiment(
            "ppt5",
            "Scaled-up Cedar reimplementation study (the deferred PPT5)",
            ppt5_scaling.run,
            ppt5_scaling.render,
        ),
        Experiment(
            "restructuring",
            "KAP-1988 vs automatable restructurer on a loop-nest gallery",
            restructuring.run,
            restructuring.render,
        ),
        Experiment(
            "network-ablation",
            "Degradation vs implementation constraints [Turn93]",
            network_ablation.run,
            network_ablation.render,
        ),
    )
}


def get_experiment(key: str) -> Experiment:
    try:
        return EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {key!r}; known: {known}") from None


def run_experiment(key: str) -> str:
    """Run and render one experiment."""
    experiment = get_experiment(key)
    return experiment.render(experiment.run())


def run_experiment_traced(key: str, tracer: Tracer) -> str:
    """Run and render one experiment with ``tracer`` as the ambient bus.

    Every machine (cycle-level or analytic) the experiment driver builds
    attaches to ``tracer``; the rendered artifact is byte-identical to an
    untraced :func:`run_experiment` because tracing only observes.
    """
    with tracing(tracer):
        return run_experiment(key)
