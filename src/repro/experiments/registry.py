"""Registry mapping paper artifact ids to experiment drivers.

Each entry also declares the experiment's *headline metrics* -- the
numbers that are the table or figure, paired with the paper-quoted targets
where the scan is legible -- which `cedar-repro bench` snapshots as the
fidelity section of ``BENCH_<n>.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.metrics.headline import HeadlineMetric
from repro.trace import Tracer, tracing

from repro.experiments import (
    figure3,
    network_ablation,
    ppt4_scalability,
    ppt5_scaling,
    restructuring,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


def _no_headline(result: object) -> List[HeadlineMetric]:
    return []


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact of the paper."""

    key: str
    description: str
    run: Callable[[], object]
    render: Callable[[object], str]
    #: Maps a run's result to its declared headline metrics (paper targets
    #: included); the bench harness snapshots these for fidelity tracking.
    headline: Callable[[object], List[HeadlineMetric]] = _no_headline
    #: Whether the driver is cheap enough for `cedar-repro bench --quick`
    #: (analytic model or sub-minute cycle simulation).
    quick: bool = False
    #: Optional unit decomposition for partitioned execution
    #: (``--partitions N``): ``units()`` names independent machine-run
    #: units, ``run_unit(name)`` executes one, and ``combine({name:
    #: result})`` reassembles exactly what ``run()`` returns.  Experiments
    #: without a decomposition run as a single unit.
    units: Optional[Callable[[], List[str]]] = None
    run_unit: Optional[Callable[[str], object]] = None
    combine: Optional[Callable[[Dict[str, object]], object]] = None


EXPERIMENTS: Dict[str, Experiment] = {
    e.key: e
    for e in (
        Experiment(
            "table1",
            "MFLOPS for rank-64 update (GM/no-pref, GM/pref, GM/cache)",
            table1.run,
            table1.render,
            table1.headline_metrics,
            units=table1.units,
            run_unit=table1.run_unit,
            combine=table1.combine,
        ),
        Experiment(
            "table2",
            "Global memory latency/interarrival for VL/TM/RK/CG",
            table2.run,
            table2.render,
            table2.headline_metrics,
            units=table2.units,
            run_unit=table2.run_unit,
            combine=table2.combine,
        ),
        Experiment(
            "table3",
            "Perfect Benchmarks: times, MFLOPS, speed improvements",
            table3.run,
            table3.render,
            table3.headline_metrics,
            quick=True,
        ),
        Experiment(
            "table4",
            "Manually optimized Perfect codes",
            table4.run,
            table4.render,
            table4.headline_metrics,
            quick=True,
        ),
        Experiment(
            "table5",
            "Instability In(13, e) on Cedar, Cray 1, Y-MP/8",
            table5.run,
            table5.render,
            table5.headline_metrics,
            quick=True,
        ),
        Experiment(
            "table6",
            "Restructuring efficiency bands (PPT3)",
            table6.run,
            table6.render,
            table6.headline_metrics,
            quick=True,
        ),
        Experiment(
            "figure3",
            "YMP/8 vs Cedar efficiency scatter (manual codes)",
            figure3.run,
            figure3.render,
            figure3.headline_metrics,
            quick=True,
        ),
        Experiment(
            "ppt4",
            "Scalability: Cedar CG vs CM-5 banded matvec",
            ppt4_scalability.run,
            ppt4_scalability.render,
            ppt4_scalability.headline_metrics,
            units=ppt4_scalability.units,
            run_unit=ppt4_scalability.run_unit,
            combine=ppt4_scalability.combine,
        ),
        Experiment(
            "ppt5",
            "Scaled-up Cedar reimplementation study (the deferred PPT5)",
            ppt5_scaling.run,
            ppt5_scaling.render,
            ppt5_scaling.headline_metrics,
            quick=True,
        ),
        Experiment(
            "restructuring",
            "KAP-1988 vs automatable restructurer on a loop-nest gallery",
            restructuring.run,
            restructuring.render,
            restructuring.headline_metrics,
            quick=True,
        ),
        Experiment(
            "network-ablation",
            "Degradation vs implementation constraints [Turn93]",
            network_ablation.run,
            network_ablation.render,
            network_ablation.headline_metrics,
            quick=True,
        ),
    )
}

#: Keys of the sub-minute experiments `cedar-repro bench --quick` runs.
QUICK_EXPERIMENTS: List[str] = [
    key for key in sorted(EXPERIMENTS) if EXPERIMENTS[key].quick
]


def get_experiment(key: str) -> Experiment:
    try:
        return EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {key!r}; known: {known}") from None


def run_experiment(key: str) -> str:
    """Run and render one experiment."""
    experiment = get_experiment(key)
    return experiment.render(experiment.run())


def run_experiment_traced(key: str, tracer: Tracer) -> str:
    """Run and render one experiment with ``tracer`` as the ambient bus.

    Every machine (cycle-level or analytic) the experiment driver builds
    attaches to ``tracer``; the rendered artifact is byte-identical to an
    untraced :func:`run_experiment` because tracing only observes.
    """
    with tracing(tracer):
        return run_experiment(key)
