"""Table 2: global memory performance under prefetching.

First-word latency and interarrival time (in CE cycles) for the VL, TM, RK
and CG kernels at 8, 16 and 32 processors, measured by the performance-
monitoring hardware exactly as Section 4.1 describes.  Minimal latency is
8 cycles; minimal interarrival is 1 cycle.  The expected shape: near-
minimal at one cluster, degrading with CE count; RK (256-word blocks,
fully overlapped) degrades fastest; TM and CG least, thanks to their
register-register operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import CedarConfig, active_config
from repro.core.report import format_table
from repro.kernels.common import KernelRun
from repro.kernels.conjugate_gradient import measure_cg
from repro.kernels.rank_update import RankUpdateVersion, measure_rank_update
from repro.kernels.tridiag_matvec import measure_tridiag
from repro.kernels.vector_load import measure_vector_load
from repro.metrics.headline import HeadlineMetric

CE_COUNTS = (8, 16, 32)


def _measure_rk(num_ces: int, config: CedarConfig) -> KernelRun:
    clusters = max(1, num_ces // config.ces_per_cluster)
    return measure_rank_update(RankUpdateVersion.GM_PREFETCH, clusters, config)


def _measure_cg(num_ces: int, config: CedarConfig) -> KernelRun:
    return measure_cg(num_ces, num_ces * 512, config)


KERNELS: Dict[str, Callable[[int, CedarConfig], KernelRun]] = {
    "VL": lambda n, c: measure_vector_load(n, c),
    "TM": lambda n, c: measure_tridiag(n, c),
    "RK": _measure_rk,
    "CG": _measure_cg,
}


@dataclass(frozen=True)
class Table2Cell:
    latency: float
    interarrival: float


@dataclass(frozen=True)
class Table2Result:
    """(kernel, CE count) -> latency/interarrival in cycles."""

    cells: Dict[Tuple[str, int], Table2Cell]

    def latency_series(self, kernel: str) -> List[float]:
        return [self.cells[(kernel, n)].latency for n in CE_COUNTS]

    def interarrival_series(self, kernel: str) -> List[float]:
        return [self.cells[(kernel, n)].interarrival for n in CE_COUNTS]


def units() -> List[str]:
    """Independent machine-run units: one per (kernel, CE count) cell.

    Partitioned execution (``--partitions N``) shards these across worker
    processes; :func:`combine` reassembles them in this declared order, so
    the result is identical for any shard assignment.
    """
    return [f"{name}:{count}" for name in KERNELS for count in CE_COUNTS]


def run_unit(unit: str, config: Optional[CedarConfig] = None) -> Table2Cell:
    """Measure one Table 2 cell (an independent simulator run)."""
    if config is None:
        config = active_config()
    name, count_text = unit.split(":")
    result = KERNELS[name](int(count_text), config)
    if result.first_word_latency is None:
        raise RuntimeError(f"{name} produced no prefetch statistics")
    return Table2Cell(
        latency=result.first_word_latency,
        interarrival=result.interarrival or 0.0,
    )


def combine(results: Dict[str, Table2Cell]) -> Table2Result:
    """Assemble per-unit cells into the table, in declared unit order."""
    cells: Dict[Tuple[str, int], Table2Cell] = {}
    for name in KERNELS:
        for count in CE_COUNTS:
            cells[(name, count)] = results[f"{name}:{count}"]
    return Table2Result(cells=cells)


def run(config: Optional[CedarConfig] = None) -> Table2Result:
    return combine({unit: run_unit(unit, config) for unit in units()})


def headline_metrics(result: Table2Result) -> List[HeadlineMetric]:
    """Every Table 2 cell.  The scan's numbers are unreadable, so only the
    stated minima serve as paper targets (latency 8 and interarrival 1 at
    the near-uncontended 8-CE points); the rest are snapshot-tracked."""
    metrics = []
    for (kernel, count), cell in sorted(result.cells.items()):
        metrics.append(
            HeadlineMetric(
                name=f"latency_{kernel.lower()}_{count}ce",
                value=cell.latency,
                unit="cycles",
                target=8.0 if count == 8 else None,
                note=f"Table 2 first-word latency, {kernel} at {count} CEs",
            )
        )
        metrics.append(
            HeadlineMetric(
                name=f"interarrival_{kernel.lower()}_{count}ce",
                value=cell.interarrival,
                unit="cycles",
                target=1.0 if count == 8 else None,
                note=f"Table 2 interarrival, {kernel} at {count} CEs",
            )
        )
    return metrics


def render(result: Table2Result) -> str:
    rows = []
    for kernel in KERNELS:
        latency = result.latency_series(kernel)
        inter = result.interarrival_series(kernel)
        rows.append(
            (
                kernel,
                *(f"{l:.1f}" for l in latency),
                *(f"{i:.2f}" for i in inter),
            )
        )
    return format_table(
        headers=(
            "kernel",
            "lat@8", "lat@16", "lat@32",
            "inter@8", "inter@16", "inter@32",
        ),
        rows=rows,
        title=(
            "Table 2: global memory performance (cycles; min latency 8, "
            "min interarrival 1)"
        ),
    )
