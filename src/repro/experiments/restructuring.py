"""Section 3.3 in miniature: KAP-1988 vs the automatable restructurer.

Runs both compilers over a gallery of loop nests exercising each named
transformation and reports who parallelizes what -- the compiler-level
ground truth behind Table 3's "Compiled by Kap/Cedar" vs "Automatable"
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.compiler import CedarRestructurer, KapCompiler
from repro.compiler.ir import (
    ArrayRef,
    Assignment,
    Loop,
    LoopNest,
    ScalarRef,
    const,
    var,
)
from repro.core.report import format_table
from repro.metrics.headline import HeadlineMetric


def gallery() -> List[LoopNest]:
    """Loop nests exercising each Section 3.3 transformation."""
    i = var("i")
    nests = []

    # Plain vector loop: both compilers handle it.
    nests.append(
        LoopNest(
            "vector-add",
            Loop(
                "i", const(1), const(4096),
                body=(
                    Assignment(
                        lhs=ArrayRef("c", (i,), True),
                        reads=(ArrayRef("a", (i,)), ArrayRef("b", (i,))),
                    ),
                ),
            ),
        )
    )

    # Scalar temporary: needs privatization.
    nests.append(
        LoopNest(
            "scalar-temp",
            Loop(
                "i", const(1), const(2048),
                body=(
                    Assignment(lhs=ScalarRef("t", True),
                               reads=(ArrayRef("a", (i,)),)),
                    Assignment(lhs=ArrayRef("b", (i,), True),
                               reads=(ScalarRef("t"),)),
                ),
            ),
        )
    )

    # Sum reduction: needs parallel reductions.
    nests.append(
        LoopNest(
            "dot-product",
            Loop(
                "i", const(1), const(8192),
                body=(
                    Assignment(
                        lhs=ScalarRef("s", True),
                        reads=(ScalarRef("s"), ArrayRef("a", (i,)),
                               ArrayRef("b", (i,))),
                        reduction_op="+",
                    ),
                ),
            ),
        )
    )

    # Induction variable: needs substitution.
    k = var("k")
    nests.append(
        LoopNest(
            "packing",
            Loop(
                "i", const(1), const(1024),
                body=(
                    Assignment(lhs=ScalarRef("k", True), reads=(ScalarRef("k"),),
                               reduction_op="+", increment=2),
                    Assignment(lhs=ArrayRef("out", (k,), True),
                               reads=(ArrayRef("a", (i,)),)),
                ),
            ),
        )
    )

    # Symbolic subscript: needs a run-time dependence test.
    m = var("m")
    nests.append(
        LoopNest(
            "symbolic-stride",
            Loop(
                "i", const(1), const(512),
                body=(
                    Assignment(
                        lhs=ArrayRef("x", (i + m,), True),
                        reads=(ArrayRef("x", (i,)),),
                    ),
                ),
            ),
        )
    )

    # True recurrence: neither compiler may parallelize it.
    nests.append(
        LoopNest(
            "recurrence",
            Loop(
                "i", const(2), const(4096),
                body=(
                    Assignment(
                        lhs=ArrayRef("x", (i,), True),
                        reads=(ArrayRef("x", (i - 1,)),),
                    ),
                ),
            ),
        )
    )
    return nests


@dataclass(frozen=True)
class RestructuringResult:
    rows: Tuple[Tuple[str, bool, bool, str], ...]  # nest, kap, auto, transforms

    def kap_count(self) -> int:
        return sum(1 for _, kap, _, _ in self.rows if kap)

    def automatable_count(self) -> int:
        return sum(1 for _, _, auto, _ in self.rows if auto)


def run() -> RestructuringResult:
    kap = KapCompiler()
    restructurer = CedarRestructurer(processors=32)
    rows = []
    for nest in gallery():
        kap_result = kap.compile(nest)
        auto_result = restructurer.compile(nest)
        rows.append(
            (
                nest.name,
                kap_result.parallelized,
                auto_result.parallelized,
                ", ".join(auto_result.applied) or "-",
            )
        )
    return RestructuringResult(rows=tuple(rows))


def headline_metrics(result: RestructuringResult) -> List[HeadlineMetric]:
    """Section 3.3 in two counts: KAP-1988 parallelizes only the clean
    vector loop; the automatable pipeline everything but the recurrence."""
    total = len(result.rows)
    return [
        HeadlineMetric(
            name="kap_parallelized",
            value=float(result.kap_count()),
            unit="nests",
            target=1.0,
            note=f"Section 3.3 gallery, KAP-1988 ({total} nests)",
        ),
        HeadlineMetric(
            name="automatable_parallelized",
            value=float(result.automatable_count()),
            unit="nests",
            target=float(total - 1),
            note=f"Section 3.3 gallery, automatable pipeline ({total} nests)",
        ),
    ]


def render(result: RestructuringResult) -> str:
    rows = [
        (name, "yes" if kap else "no", "yes" if auto else "no", transforms)
        for name, kap, auto, transforms in result.rows
    ]
    table = format_table(
        headers=("loop nest", "KAP-1988", "automatable", "transformations"),
        rows=rows,
        title="Section 3.3: what each compiler parallelizes",
    )
    return (
        table
        + f"\nKAP parallelizes {result.kap_count()}/{len(result.rows)}; "
        f"the automatable pipeline {result.automatable_count()}/{len(result.rows)}"
    )
