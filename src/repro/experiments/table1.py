"""Table 1: MFLOPS for the rank-64 update on Cedar.

Three memory-system versions (GM/no-pref, GM/pref, GM/cache) across one to
four clusters, regenerated on the cycle-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import CedarConfig
from repro.core.report import format_table
from repro.kernels.rank_update import RankUpdateVersion, measure_rank_update
from repro.metrics.headline import HeadlineMetric, slugify

#: The paper's Table 1, for side-by-side display.
PAPER_VALUES: Dict[RankUpdateVersion, Tuple[float, float, float, float]] = {
    RankUpdateVersion.GM_NO_PREFETCH: (14.5, 29.0, 43.0, 55.0),
    RankUpdateVersion.GM_PREFETCH: (50.0, 84.0, 96.0, 104.0),
    RankUpdateVersion.GM_CACHE: (52.0, 104.0, 152.0, 208.0),
}

CLUSTER_COUNTS = (1, 2, 3, 4)


@dataclass(frozen=True)
class Table1Result:
    """Measured MFLOPS per version per cluster count."""

    mflops: Dict[RankUpdateVersion, Tuple[float, ...]]

    def improvement_over_no_prefetch(
        self, version: RankUpdateVersion
    ) -> Tuple[float, ...]:
        base = self.mflops[RankUpdateVersion.GM_NO_PREFETCH]
        return tuple(
            v / b for v, b in zip(self.mflops[version], base)
        )


def units() -> List[str]:
    """Independent machine-run units: one per (version, clusters) cell."""
    return [
        f"{version.name}:{clusters}"
        for version in RankUpdateVersion
        for clusters in CLUSTER_COUNTS
    ]


def run_unit(unit: str, config: Optional[CedarConfig] = None) -> float:
    """Measure one Table 1 cell's MFLOPS (an independent simulator run)."""
    version_name, clusters_text = unit.split(":")
    version = RankUpdateVersion[version_name]
    return measure_rank_update(version, int(clusters_text), config).mflops


def combine(results: Dict[str, float]) -> Table1Result:
    """Assemble per-unit MFLOPS into the table, in declared unit order."""
    measured: Dict[RankUpdateVersion, Tuple[float, ...]] = {}
    for version in RankUpdateVersion:
        measured[version] = tuple(
            results[f"{version.name}:{clusters}"]
            for clusters in CLUSTER_COUNTS
        )
    return Table1Result(mflops=measured)


def run(config: Optional[CedarConfig] = None) -> Table1Result:
    """Regenerate every cell of Table 1 on the simulator."""
    return combine({unit: run_unit(unit, config) for unit in units()})


def headline_metrics(result: Table1Result) -> List[HeadlineMetric]:
    """Every Table 1 cell, measured vs the paper's MFLOPS number."""
    metrics = []
    for version in RankUpdateVersion:
        for clusters, measured, paper in zip(
            CLUSTER_COUNTS, result.mflops[version], PAPER_VALUES[version]
        ):
            metrics.append(
                HeadlineMetric(
                    name=f"mflops_{slugify(version.value)}_{clusters}cl",
                    value=measured,
                    unit="MFLOPS",
                    target=paper,
                    note=f"Table 1, {version.value} at {clusters} cluster(s)",
                )
            )
    return metrics


def render(result: Table1Result) -> str:
    rows = []
    for version in RankUpdateVersion:
        measured = result.mflops[version]
        paper = PAPER_VALUES[version]
        rows.append(
            (version.value, *(f"{m:.1f} ({p:.0f})" for m, p in zip(measured, paper)))
        )
    return format_table(
        headers=("version", "1 cl.", "2 cl.", "3 cl.", "4 cl."),
        rows=rows,
        title="Table 1: MFLOPS for rank-64 update on Cedar -- measured (paper)",
    )
