"""Network ablation (Section 4.1's closing claim, [Turn93]).

"We have shown via detailed simulations that this degradation is not
inherent in the type of network used but is a result of specific
implementation constraints."  The ablation re-runs the VL contention
experiment at 32 CEs while relaxing the implementation constraints one at
a time -- deeper port queues, faster memory modules, a wider switch clock --
and shows the interarrival degradation shrinking while the topology stays
a 2-stage shuffle-exchange throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.core.report import format_table
from repro.kernels.vector_load import measure_vector_load
from repro.metrics.headline import HeadlineMetric, slugify


@dataclass(frozen=True)
class AblationPoint:
    name: str
    latency: float
    interarrival: float


@dataclass(frozen=True)
class AblationResult:
    points: Tuple[AblationPoint, ...]

    def by_name(self) -> Dict[str, AblationPoint]:
        return {p.name: p for p in self.points}


def _variants(config: CedarConfig) -> List[Tuple[str, CedarConfig]]:
    deeper_queues = replace(
        config, network=replace(config.network, port_queue_words=8)
    )
    faster_modules = replace(
        config, global_memory=replace(config.global_memory, module_cycle_time=1)
    )
    both = replace(
        deeper_queues,
        global_memory=replace(config.global_memory, module_cycle_time=1),
    )
    return [
        ("as-built", config),
        ("deep-queues", deeper_queues),
        ("fast-modules", faster_modules),
        ("both", both),
    ]


def run(
    config: CedarConfig = DEFAULT_CONFIG, num_ces: int = 32
) -> AblationResult:
    points = []
    for name, variant in _variants(config):
        result = measure_vector_load(num_ces, variant)
        points.append(
            AblationPoint(
                name=name,
                latency=result.first_word_latency or 0.0,
                interarrival=result.interarrival or 0.0,
            )
        )
    return AblationResult(points=tuple(points))


def headline_metrics(result: AblationResult) -> List[HeadlineMetric]:
    """Per-variant interarrival plus the [Turn93] recovery ratio: relaxing
    the implementation constraints (same topology) must recover most of the
    degradation, i.e. the ratio falls well below 1."""
    metrics = []
    for point in result.points:
        metrics.append(
            HeadlineMetric(
                name=f"interarrival_{slugify(point.name)}",
                value=point.interarrival,
                unit="cycles",
                note=f"network ablation at 32 CEs, {point.name} variant",
            )
        )
    by_name = result.by_name()
    as_built = by_name["as-built"].interarrival
    if as_built > 0:
        metrics.append(
            HeadlineMetric(
                name="constraint_recovery_ratio",
                value=by_name["both"].interarrival / as_built,
                unit="ratio",
                note="[Turn93]: relaxed-constraints interarrival over "
                "as-built; << 1 means degradation is not topological",
            )
        )
    return metrics


def render(result: AblationResult) -> str:
    rows = [
        (p.name, f"{p.latency:.1f}", f"{p.interarrival:.2f}")
        for p in result.points
    ]
    return format_table(
        headers=("variant", "latency (cyc)", "interarrival (cyc)"),
        rows=rows,
        title=(
            "Network ablation at 32 CEs: degradation follows implementation "
            "constraints, not the shuffle-exchange topology [Turn93]"
        ),
    )
