"""Table 6: restructuring efficiency bands (PPT3).

Band census of compiler-delivered efficiency at the machine's processor
count: Cedar automatable at P=32 (paper: 1 high, 9 intermediate,
3 unacceptable) vs Cray Y-MP/8 compiled at P=8 (paper: 0/6/7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines import CRAY_YMP8
from repro.core.bands import BandCensus, census
from repro.core.report import format_table
from repro.metrics.headline import HeadlineMetric
from repro.perfect.suite import run_suite
from repro.perfect.versions import Version

PAPER_CEDAR = (1, 9, 3)
PAPER_YMP = (0, 6, 7)


@dataclass(frozen=True)
class Table6Result:
    cedar: BandCensus
    ymp: BandCensus
    cedar_efficiencies: Dict[str, float]


def cedar_efficiencies() -> Dict[str, float]:
    grid = run_suite(versions=(Version.SERIAL, Version.AUTOMATABLE))
    return {
        code: versions[Version.AUTOMATABLE].efficiency
        for code, versions in grid.items()
    }


def run() -> Table6Result:
    cedar = cedar_efficiencies()
    return Table6Result(
        cedar=census(cedar, 32),
        ymp=census(CRAY_YMP8.efficiencies(), CRAY_YMP8.processors),
        cedar_efficiencies=cedar,
    )


def headline_metrics(result: Table6Result) -> List[HeadlineMetric]:
    """All six Table 6 band counts, exact against the paper."""
    metrics = []
    for machine, label, paper in (
        ("cedar", result.cedar, PAPER_CEDAR),
        ("ymp", result.ymp, PAPER_YMP),
    ):
        for band, measured, target in zip(
            ("high", "intermediate", "unacceptable"),
            (label.high, label.intermediate, label.unacceptable),
            paper,
        ):
            metrics.append(
                HeadlineMetric(
                    name=f"band_{band}_{machine}",
                    value=float(measured),
                    unit="codes",
                    target=float(target),
                    note=f"Table 6, {band} band on {machine}",
                )
            )
    return metrics


def render(result: Table6Result) -> str:
    rows = [
        (
            "High (Ep >= .5)",
            f"{result.cedar.high} ({PAPER_CEDAR[0]})",
            f"{result.ymp.high} ({PAPER_YMP[0]})",
        ),
        (
            "Intermediate (Ep >= 1/2logP)",
            f"{result.cedar.intermediate} ({PAPER_CEDAR[1]})",
            f"{result.ymp.intermediate} ({PAPER_YMP[1]})",
        ),
        (
            "Unacceptable (Ep < 1/2logP)",
            f"{result.cedar.unacceptable} ({PAPER_CEDAR[2]})",
            f"{result.ymp.unacceptable} ({PAPER_YMP[2]})",
        ),
    ]
    return format_table(
        headers=("performance level", "Cedar", "Cray YMP"),
        rows=rows,
        title="Table 6: restructuring efficiency -- measured (paper)",
    )
