"""Table 5: instability of the Perfect ensembles on Cedar, Cray 1, Y-MP/8.

In(13, e) for e in {0, 2, 6} over the compiled/automatable MFLOPS
ensembles, plus the minimal exclusions needed for workstation-level
stability (In <= 6): two on Cedar and the Cray 1, six on the Y-MP/8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines import CRAY_1, CRAY_YMP8
from repro.core.report import format_table
from repro.metrics.headline import HeadlineMetric, slugify
from repro.core.stability import (
    STABILITY_THRESHOLD,
    instability_profile,
    minimal_exclusions_for_stability,
)
from repro.perfect.suite import run_suite
from repro.perfect.versions import Version

EXCLUSION_COUNTS = (0, 2, 6)

#: The paper's Table 5 (dashes where the scan is unreadable).
PAPER_VALUES: Dict[str, Dict[int, Optional[float]]] = {
    "cedar": {0: 63.4, 2: 5.8, 6: None},
    "cray-1": {0: 10.9, 2: 4.6, 6: None},
    "cray-ymp8": {0: 75.3, 2: 29.0, 6: 5.3},
}


@dataclass(frozen=True)
class Table5Result:
    profiles: Dict[str, Dict[int, float]]
    exclusions_needed: Dict[str, int]


def cedar_mflops_ensemble() -> Dict[str, float]:
    """The Cedar automatable MFLOPS ensemble from the machine model."""
    grid = run_suite(versions=(Version.SERIAL, Version.AUTOMATABLE))
    return {
        code: versions[Version.AUTOMATABLE].mflops
        for code, versions in grid.items()
    }


def run() -> Table5Result:
    ensembles = {
        "cedar": cedar_mflops_ensemble(),
        "cray-1": CRAY_1.mflops_ensemble(),
        "cray-ymp8": CRAY_YMP8.mflops_ensemble(),
    }
    profiles = {
        name: instability_profile(rates, EXCLUSION_COUNTS)
        for name, rates in ensembles.items()
    }
    needed = {
        name: minimal_exclusions_for_stability(rates, STABILITY_THRESHOLD)
        for name, rates in ensembles.items()
    }
    return Table5Result(profiles=profiles, exclusions_needed=needed)


#: Exclusions needed for workstation-level stability (In <= 6), per paper.
PAPER_EXCLUSIONS = {"cedar": 2, "cray-1": 2, "cray-ymp8": 6}


def headline_metrics(result: Table5Result) -> List[HeadlineMetric]:
    """Every legible Table 5 cell plus the exclusion counts."""
    metrics = []
    for machine, profile in sorted(result.profiles.items()):
        slug = slugify(machine)
        for e in EXCLUSION_COUNTS:
            measured = profile.get(e)
            if measured is None:
                continue
            metrics.append(
                HeadlineMetric(
                    name=f"instability_{slug}_e{e}",
                    value=measured,
                    unit="In",
                    target=PAPER_VALUES[machine].get(e),
                    note=f"Table 5, In(13, {e}) on {machine}",
                )
            )
        metrics.append(
            HeadlineMetric(
                name=f"exclusions_for_stability_{slug}",
                value=float(result.exclusions_needed[machine]),
                unit="codes",
                target=float(PAPER_EXCLUSIONS[machine]),
                note=f"Table 5, exclusions for In <= 6 on {machine}",
            )
        )
    return metrics


def render(result: Table5Result) -> str:
    rows = []
    for machine, profile in result.profiles.items():
        paper = PAPER_VALUES[machine]
        cells = []
        for e in EXCLUSION_COUNTS:
            measured = profile.get(e)
            reference = paper.get(e)
            text = f"{measured:.1f}" if measured is not None else "-"
            if reference is not None:
                text += f" ({reference})"
            cells.append(text)
        rows.append((machine, *cells, result.exclusions_needed[machine]))
    return format_table(
        headers=("machine", "In(13,0)", "In(13,2)", "In(13,6)", "e for In<=6"),
        rows=rows,
        title="Table 5: instability for Perfect codes -- measured (paper)",
    )
