"""Experiment drivers: one per table/figure of the paper's evaluation.

Each module exposes ``run()`` returning a structured result and
``render(result)`` returning the ASCII artifact; the registry maps the
paper's artifact ids to them for :mod:`repro.cli`.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
