"""Table 4: execution times for manually altered Perfect codes and their
improvement over automatable-with-prefetch-without-Cedar-synchronization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.report import format_table
from repro.metrics.headline import HeadlineMetric
from repro.perfect.suite import code_names, get_profile, run_code
from repro.perfect.targets import TARGETS
from repro.perfect.versions import Version

#: Codes whose hand optimizations the paper's Table 4 lists.
TABLE4_CODES = ("ARC3D", "BDNA", "DYFESM", "FLO52", "QCD", "SPICE", "TRFD")


@dataclass(frozen=True)
class Table4Row:
    code: str
    hand_seconds: float
    improvement: float  # over the no-sync automatable version (Table 4 basis)
    paper_seconds: Optional[float]
    paper_improvement: Optional[float]


@dataclass(frozen=True)
class Table4Result:
    rows: Tuple[Table4Row, ...]


def run() -> Table4Result:
    rows = []
    for code in TABLE4_CODES:
        hand = run_code(code, Version.HAND)
        nosync = run_code(code, Version.AUTOMATABLE_NO_SYNC)
        target = TARGETS[code]
        rows.append(
            Table4Row(
                code=code,
                hand_seconds=hand.seconds,
                improvement=nosync.seconds / hand.seconds,
                paper_seconds=target.hand_seconds,
                paper_improvement=target.hand_improvement,
            )
        )
    return Table4Result(rows=tuple(rows))


def headline_metrics(result: Table4Result) -> List[HeadlineMetric]:
    """Hand-optimized times and improvements against the paper's Table 4."""
    metrics = []
    for row in result.rows:
        code = row.code.lower()
        metrics.append(
            HeadlineMetric(
                name=f"hand_seconds_{code}",
                value=row.hand_seconds,
                unit="s",
                target=row.paper_seconds,
                note=f"Table 4, {row.code} hand-optimized time",
            )
        )
        metrics.append(
            HeadlineMetric(
                name=f"hand_improvement_{code}",
                value=row.improvement,
                unit="ratio",
                target=row.paper_improvement,
                note=f"Table 4, {row.code} improvement over no-sync automatable",
            )
        )
    return metrics


def render(result: Table4Result) -> str:
    rows = [
        (
            row.code,
            f"{row.hand_seconds:.1f}",
            f"{row.improvement:.2f}",
            f"{row.paper_seconds:.1f}" if row.paper_seconds else "-",
            f"{row.paper_improvement:.1f}" if row.paper_improvement else "-",
        )
        for row in result.rows
    ]
    return format_table(
        headers=("code", "time s", "improvement", "paper s", "paper impr"),
        rows=rows,
        title=(
            "Table 4: manually altered Perfect codes (improvement over "
            "automatable w/ prefetch, w/o Cedar sync)"
        ),
    )
