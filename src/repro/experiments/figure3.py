"""Figure 3: Cray Y-MP/8 vs Cedar efficiency scatter (manual codes).

"The 8-processor YMP has about half high and half intermediate levels of
performance, while the 32-processor Cedar has about one-quarter high and
three-quarters intermediate.  Note that the YMP has one unacceptable
performance, while Cedar has none."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import CRAY_YMP8
from repro.core.bands import Band, BandCensus, census, classify_efficiency
from repro.core.report import efficiency_scatter, fraction_description
from repro.metrics.headline import HeadlineMetric
from repro.perfect.suite import run_suite
from repro.perfect.versions import Version


@dataclass(frozen=True)
class Figure3Result:
    cedar_efficiencies: Dict[str, float]
    ymp_efficiencies: Dict[str, float]
    cedar_census: BandCensus
    ymp_census: BandCensus


def cedar_manual_efficiencies() -> Dict[str, float]:
    """Hand-version efficiency per code (falls back to automatable where
    no hand recipe exists -- every profile here ships one)."""
    grid = run_suite(versions=(Version.SERIAL, Version.AUTOMATABLE, Version.HAND))
    efficiencies = {}
    for code, versions in grid.items():
        best = versions.get(Version.HAND, versions[Version.AUTOMATABLE])
        efficiencies[code] = best.efficiency
    return efficiencies


def run() -> Figure3Result:
    cedar = cedar_manual_efficiencies()
    ymp = CRAY_YMP8.efficiencies(manual=True)
    return Figure3Result(
        cedar_efficiencies=cedar,
        ymp_efficiencies=ymp,
        cedar_census=census(cedar, 32),
        ymp_census=census(ymp, CRAY_YMP8.processors),
    )


def headline_metrics(result: Figure3Result) -> List[HeadlineMetric]:
    """Figure 3 band counts.  The unacceptable counts are paper-exact
    ("Cedar has none", YMP "one unacceptable"); the high/intermediate
    splits are quoted only as fractions and are snapshot-tracked."""
    return [
        HeadlineMetric(
            name="manual_unacceptable_cedar",
            value=float(result.cedar_census.unacceptable),
            unit="codes",
            target=0.0,
            note='Figure 3, "Cedar has none"',
        ),
        HeadlineMetric(
            name="manual_unacceptable_ymp",
            value=float(result.ymp_census.unacceptable),
            unit="codes",
            target=1.0,
            note='Figure 3, "the YMP has one unacceptable performance"',
        ),
        HeadlineMetric(
            name="manual_high_cedar",
            value=float(result.cedar_census.high),
            unit="codes",
            note='Figure 3, "about one-quarter high" of 13 codes',
        ),
        HeadlineMetric(
            name="manual_high_ymp",
            value=float(result.ymp_census.high),
            unit="codes",
            note='Figure 3, "about half high" of 13 codes',
        ),
    ]


def render(result: Figure3Result) -> str:
    plot = efficiency_scatter(
        x_efficiencies=result.ymp_efficiencies,
        y_efficiencies=result.cedar_efficiencies,
        x_processors=CRAY_YMP8.processors,
        y_processors=32,
    )
    cedar_bands = {
        code: classify_efficiency(eff, 32)
        for code, eff in result.cedar_efficiencies.items()
    }
    ymp_bands = {
        code: classify_efficiency(eff, CRAY_YMP8.processors)
        for code, eff in result.ymp_efficiencies.items()
    }
    return "\n".join(
        [
            "Figure 3: Cray YMP/8 vs Cedar efficiency (manual codes)",
            plot,
            f"Cedar: {fraction_description(cedar_bands)} "
            "(paper: ~1/4 high, ~3/4 intermediate, none unacceptable)",
            f"YMP/8: {fraction_description(ymp_bands)} "
            "(paper: ~half high, ~half intermediate, one unacceptable)",
        ]
    )
