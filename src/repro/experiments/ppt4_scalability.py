"""PPT4, Code and Architecture Scalability (Section 4.3).

Cedar side: conjugate gradient on the cycle simulator, processors 2..32 and
problem sizes 1K..172K.  Paper: "Cedar exhibits scalable high performance
for matrices larger than something between 10K and 16K ... and scalable
intermediate performance for smaller matrices"; at 32 processors CG
delivers "between 34 and 48 MFLOPS as the problem size ranges from 10K to
172K".

CM-5 side: banded matrix-vector products (bandwidths 3 and 11) on 32, 256
and 512 processors without floating-point accelerators, 16K <= N <= 256K:
scalable *intermediate* performance, 28-32 MFLOPS (BW=3) and 58-67 MFLOPS
(BW=11) at 32 processors.

Speedups are relative to the one-processor run of the same (vectorized,
prefetched) code, as in an algorithm-level scalability study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.cm5 import CM5Model
from repro.config import CedarConfig
from repro.core.bands import Band
from repro.core.ppt import PPT4Result, ScalabilityPoint, evaluate_ppt4
from repro.core.report import format_table
from repro.kernels.conjugate_gradient import FLOPS_PER_POINT, cg_time_cycles
from repro.metrics.headline import HeadlineMetric

CEDAR_PROCESSOR_COUNTS = (8, 16, 32)
CEDAR_PROBLEM_SIZES = (1_024, 4_096, 10_240, 16_384, 45_056, 90_112, 176_128)
CM5_PROBLEM_SIZES = (16_384, 65_536, 262_144)
CM5_PARTITIONS = (32, 256, 512)


@dataclass(frozen=True)
class PPT4Study:
    cedar: PPT4Result
    cm5: Dict[int, PPT4Result]  # bandwidth -> result
    cedar_mflops_at_32: Tuple[float, float]  # min/max over sizes >= 10K


def units() -> List[str]:
    """Independent simulator-run units: serial baselines + (P, N) points.

    Each unit is one ``cg_time_cycles`` run; :func:`combine` derives the
    scalability points and the (analytic, cheap) CM-5 side, so sharding
    these across partitions reproduces :func:`run` exactly.
    """
    names = [f"serial:{n}" for n in CEDAR_PROBLEM_SIZES]
    names.extend(
        f"cg:{processors}:{n}"
        for processors in CEDAR_PROCESSOR_COUNTS
        for n in CEDAR_PROBLEM_SIZES
        if n >= processors * 64  # below one strip per CE: not meaningful
    )
    return names


def run_unit(unit: str, config: Optional[CedarConfig] = None) -> float:
    """One CG timing run (cycles) for a serial baseline or a (P, N) point."""
    parts = unit.split(":")
    if parts[0] == "serial":
        return cg_time_cycles(1, int(parts[1]), config)
    return cg_time_cycles(int(parts[1]), int(parts[2]), config)


def _cedar_points_from_cycles(
    serial_cycles: Dict[int, float],
    point_cycles: Dict[Tuple[int, int], float],
) -> List[ScalabilityPoint]:
    points: List[ScalabilityPoint] = []
    for processors in CEDAR_PROCESSOR_COUNTS:
        for n in CEDAR_PROBLEM_SIZES:
            if n < processors * 64:
                continue
            cycles = point_cycles[(processors, n)]
            mflops = FLOPS_PER_POINT * n / (cycles * 170e-9) / 1e6
            speedup = serial_cycles[n] / cycles
            points.append(
                ScalabilityPoint(
                    processors=processors,
                    problem_size=n,
                    mflops=mflops,
                    efficiency=speedup / processors,
                )
            )
    return points


def cedar_cg_points(
    config: Optional[CedarConfig] = None,
) -> List[ScalabilityPoint]:
    """CG rate/efficiency across (P, N) on the cycle simulator."""
    serial_cycles = {
        n: cg_time_cycles(1, n, config) for n in CEDAR_PROBLEM_SIZES
    }
    point_cycles = {
        (processors, n): cg_time_cycles(processors, n, config)
        for processors in CEDAR_PROCESSOR_COUNTS
        for n in CEDAR_PROBLEM_SIZES
        if n >= processors * 64
    }
    return _cedar_points_from_cycles(serial_cycles, point_cycles)


def _study_from_points(cedar_points: List[ScalabilityPoint]) -> PPT4Study:
    cedar = evaluate_ppt4("cedar", cedar_points)
    cm5 = {}
    for bandwidth in (3, 11):
        points: List[ScalabilityPoint] = []
        for partition in CM5_PARTITIONS:
            model = CM5Model(processors=partition)
            points.extend(
                model.scalability_points(bandwidth, list(CM5_PROBLEM_SIZES))
            )
        cm5[bandwidth] = evaluate_ppt4("cm5", points)
    at_32 = [
        p.mflops
        for p in cedar_points
        if p.processors == 32 and p.problem_size >= 10_240
    ]
    return PPT4Study(
        cedar=cedar,
        cm5=cm5,
        cedar_mflops_at_32=(min(at_32), max(at_32)),
    )


def combine(results: Dict[str, float]) -> PPT4Study:
    """Assemble per-unit cycle counts into the full study."""
    serial_cycles = {
        n: results[f"serial:{n}"] for n in CEDAR_PROBLEM_SIZES
    }
    point_cycles = {
        (processors, n): results[f"cg:{processors}:{n}"]
        for processors in CEDAR_PROCESSOR_COUNTS
        for n in CEDAR_PROBLEM_SIZES
        if n >= processors * 64
    }
    return _study_from_points(
        _cedar_points_from_cycles(serial_cycles, point_cycles)
    )


def run(config: Optional[CedarConfig] = None) -> PPT4Study:
    return _study_from_points(cedar_cg_points(config))


def headline_metrics(study: PPT4Study) -> List[HeadlineMetric]:
    """PPT4 headline numbers.  The Cedar CG rates carry the paper's 34-48
    MFLOPS quote as informational targets (the simulator runs ~30% optimistic,
    see EXPERIMENTS.md); the CM-5 ranges and the no-unacceptable count are
    reproduced inside the quoted bounds."""
    from repro.core.bands import Band

    low, high = study.cedar_mflops_at_32
    unacceptable = sum(
        1 for p in study.cedar.points if p.band is Band.UNACCEPTABLE
    ) + sum(
        1
        for result in study.cm5.values()
        for p in result.points
        if p.band is Band.UNACCEPTABLE
    )
    metrics = [
        HeadlineMetric(
            name="cedar_cg_mflops_at_32_min",
            value=low,
            unit="MFLOPS",
            target=34.0,
            note="PPT4, Cedar CG at P=32 over N>=10K (paper: 34..48)",
        ),
        HeadlineMetric(
            name="cedar_cg_mflops_at_32_max",
            value=high,
            unit="MFLOPS",
            target=48.0,
            note="PPT4, Cedar CG at P=32 over N>=10K (paper: 34..48)",
        ),
        HeadlineMetric(
            name="unacceptable_points",
            value=float(unacceptable),
            unit="points",
            target=0.0,
            note='PPT4, "No unacceptable performance was observed"',
        ),
    ]
    for bandwidth, result in sorted(study.cm5.items()):
        rates = [p.mflops for p in result.points if p.processors == 32]
        paper_low, paper_high = {3: (28.0, 32.0), 11: (58.0, 67.0)}[bandwidth]
        metrics.append(
            HeadlineMetric(
                name=f"cm5_bw{bandwidth}_mflops_at_32_min",
                value=min(rates),
                unit="MFLOPS",
                target=paper_low,
                note=f"PPT4, CM-5 BW={bandwidth} at 32 nodes "
                f"(paper: {paper_low:.0f}..{paper_high:.0f})",
            )
        )
        metrics.append(
            HeadlineMetric(
                name=f"cm5_bw{bandwidth}_mflops_at_32_max",
                value=max(rates),
                unit="MFLOPS",
                target=paper_high,
                note=f"PPT4, CM-5 BW={bandwidth} at 32 nodes "
                f"(paper: {paper_low:.0f}..{paper_high:.0f})",
            )
        )
    return metrics


def render(study: PPT4Study) -> str:
    rows = []
    for point in study.cedar.points:
        rows.append(
            (
                "cedar CG",
                point.processors,
                point.problem_size,
                f"{point.mflops:.1f}",
                f"{point.efficiency:.2f}",
                point.band.value,
            )
        )
    for bandwidth, result in study.cm5.items():
        for point in result.points:
            rows.append(
                (
                    f"cm5 bw={bandwidth}",
                    point.processors,
                    point.problem_size,
                    f"{point.mflops:.1f}",
                    f"{point.efficiency:.2f}",
                    point.band.value,
                )
            )
    table = format_table(
        headers=("workload", "P", "N", "MFLOPS", "efficiency", "band"),
        rows=rows,
        title="PPT4: scalability of Cedar CG vs CM-5 banded matvec",
    )
    low, high = study.cedar_mflops_at_32
    footer = (
        f"\nCedar CG at P=32, N>=10K: {low:.0f}..{high:.0f} MFLOPS "
        "(paper: 34..48); CM-5 per-processor rates roughly equivalent"
    )
    return table + footer
