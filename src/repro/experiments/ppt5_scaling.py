"""PPT5: Technology and Scalable Reimplementability (Section 4.3).

The paper stops short of PPT5 -- "We are in the process of collecting
detailed simulation data for various computations on scaled-up Cedar-like
systems.  This takes us into the realm of PPT 5 which we shall not deal
with further, in this paper."  This experiment is that study: rebuild the
Cedar design at 8 and 16 clusters (64 and 128 CEs, memory modules scaled
with the processor count, the shuffle-exchange network growing from two to
three stages of 8x8 switches past 64 ports) and measure what reimplemen-
tation does to the per-CE prefetch stream.

The qualitative question: is the degradation of Table 2 a property of the
*design* (it would worsen with scale) or of the as-built implementation
constraints?  With modules scaled proportionally the per-CE rate holds to
within tens of percents while minimum latency grows by one switch stage --
the design rescales, which is the PPT5 answer the Cedar group expected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.core.report import format_table
from repro.kernels.vector_load import measure_vector_load
from repro.metrics.headline import HeadlineMetric


@dataclass(frozen=True)
class ScalePoint:
    """One scaled machine's prefetch-stream behaviour."""

    clusters: int
    ces: int
    network_stages: int
    latency: float
    interarrival: float

    @property
    def per_ce_words_per_cycle(self) -> float:
        if self.interarrival <= 0:
            raise ValueError("no interarrival measured")
        return 1.0 / self.interarrival


@dataclass(frozen=True)
class PPT5Study:
    points: Tuple[ScalePoint, ...]

    def rate_retention(self) -> float:
        """Per-CE stream rate at the largest scale over the as-built rate."""
        base = self.points[0].per_ce_words_per_cycle
        return self.points[-1].per_ce_words_per_cycle / base

    @property
    def passed(self) -> bool:
        """PPT5 verdict: the reimplemented design keeps most of its per-CE
        delivered bandwidth (we require >= half)."""
        return self.rate_retention() >= 0.5


def scaled_config(clusters: int) -> CedarConfig:
    """The Cedar design reimplemented at ``clusters`` clusters.

    Memory modules scale with the CE count (the design couples them
    through the matched network/memory bandwidth); everything else is the
    original parameter set in a newer technology's larger package.
    """
    base = DEFAULT_CONFIG.with_clusters(clusters)
    ces = clusters * base.ces_per_cluster
    return replace(
        base,
        global_memory=replace(base.global_memory, num_modules=ces),
    )


def run(cluster_counts: Tuple[int, ...] = (4, 8, 16)) -> PPT5Study:
    points: List[ScalePoint] = []
    for clusters in cluster_counts:
        config = scaled_config(clusters)
        run_result = measure_vector_load(config.num_ces, config, blocks=12)
        points.append(
            ScalePoint(
                clusters=clusters,
                ces=config.num_ces,
                network_stages=config.network_stages,
                latency=run_result.first_word_latency or 0.0,
                interarrival=run_result.interarrival or 0.0,
            )
        )
    return PPT5Study(points=tuple(points))


def headline_metrics(study: PPT5Study) -> List[HeadlineMetric]:
    """The PPT5 verdict (pass requires rate retention >= 0.5) plus the
    per-scale prefetch-stream numbers."""
    metrics = [
        HeadlineMetric(
            name="rate_retention_largest_scale",
            value=study.rate_retention(),
            unit="ratio",
            note="PPT5, per-CE stream rate at 16 clusters over as-built "
            "(>= 0.5 passes)",
        ),
        HeadlineMetric(
            name="ppt5_passed",
            value=1.0 if study.passed else 0.0,
            unit="bool",
            target=1.0,
            note="PPT5 verdict: the design rescales",
        ),
    ]
    for point in study.points:
        metrics.append(
            HeadlineMetric(
                name=f"latency_{point.clusters}cl",
                value=point.latency,
                unit="cycles",
                note=f"PPT5, first-word latency at {point.clusters} clusters "
                f"({point.network_stages}-stage network)",
            )
        )
        metrics.append(
            HeadlineMetric(
                name=f"interarrival_{point.clusters}cl",
                value=point.interarrival,
                unit="cycles",
                note=f"PPT5, interarrival at {point.clusters} clusters",
            )
        )
    return metrics


def render(study: PPT5Study) -> str:
    rows = [
        (
            p.clusters,
            p.ces,
            p.network_stages,
            f"{p.latency:.1f}",
            f"{p.interarrival:.2f}",
            f"{p.per_ce_words_per_cycle:.2f}",
        )
        for p in study.points
    ]
    table = format_table(
        headers=("clusters", "CEs", "net stages", "latency", "interarrival",
                 "w/cyc per CE"),
        rows=rows,
        title="PPT5: the Cedar design reimplemented at larger scale",
    )
    verdict = "passes" if study.passed else "fails"
    return (
        table
        + f"\nper-CE rate retention at the largest scale: "
        f"{study.rate_retention():.2f} -> design {verdict} PPT5"
    )
