"""Table 3: Cedar execution time, MFLOPS, and speed improvement for the
Perfect Benchmarks, across the measured version ladder."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.cray_ymp import CRAY_YMP8
from repro.core.metrics import harmonic_mean
from repro.core.report import format_table
from repro.metrics.headline import HeadlineMetric
from repro.perfect.suite import PerfectResult, code_names, run_suite
from repro.perfect.versions import Version


@dataclass(frozen=True)
class Table3Result:
    """The full version grid plus the YMP comparison columns."""

    grid: Dict[str, Dict[Version, PerfectResult]]

    def cedar_mflops(self) -> Dict[str, float]:
        return {
            code: versions[Version.AUTOMATABLE].mflops
            for code, versions in self.grid.items()
        }

    def harmonic_mean_mflops(self) -> float:
        return harmonic_mean(list(self.cedar_mflops().values()))

    def ymp_ratio(self) -> float:
        """Harmonic-mean MFLOPS ratio, Y-MP/8 over Cedar."""
        ymp = harmonic_mean(list(CRAY_YMP8.mflops_ensemble().values()))
        return ymp / self.harmonic_mean_mflops()


def run() -> Table3Result:
    return Table3Result(grid=run_suite())


def headline_metrics(result: Table3Result) -> List[HeadlineMetric]:
    """Table 3 headline numbers.  The paper-verbatim anchor is QCD's 1.8x
    automatable improvement; the harmonic means are tracked without paper
    targets (see EXPERIMENTS.md on the In/HM tension)."""
    qcd = result.grid["QCD"][Version.AUTOMATABLE]
    metrics = [
        HeadlineMetric(
            name="qcd_automatable_improvement",
            value=qcd.improvement,
            unit="ratio",
            target=1.8,
            note='Table 3, "1.8 rather than the 20.8" QCD anchor',
        ),
        HeadlineMetric(
            name="harmonic_mean_mflops_cedar",
            value=result.harmonic_mean_mflops(),
            unit="MFLOPS",
            note="Table 3 footer; paper's 23.7/7.4 are inconsistent with "
            "Table 5 (EXPERIMENTS.md)",
        ),
        HeadlineMetric(
            name="ymp_over_cedar_ratio",
            value=result.ymp_ratio(),
            unit="ratio",
            note="Y-MP/8 over Cedar harmonic-mean MFLOPS",
        ),
    ]
    for code in code_names():
        metrics.append(
            HeadlineMetric(
                name=f"mflops_{code.lower()}_automatable",
                value=result.grid[code][Version.AUTOMATABLE].mflops,
                unit="MFLOPS",
                note=f"Table 3, {code} automatable MFLOPS (reconstructed cell)",
            )
        )
    return metrics


def render(result: Table3Result) -> str:
    rows = []
    ymp = CRAY_YMP8.mflops_ensemble()
    for code in code_names():
        versions = result.grid[code]
        auto = versions[Version.AUTOMATABLE]
        rows.append(
            (
                code,
                f"{auto.serial_seconds:.0f}",
                f"{versions[Version.KAP].improvement:.1f}",
                f"{auto.seconds:.0f}",
                f"{auto.improvement:.1f}",
                f"{versions[Version.AUTOMATABLE_NO_SYNC].seconds:.0f}",
                f"{versions[Version.AUTOMATABLE_NO_PREFETCH].seconds:.0f}",
                f"{auto.mflops:.2f}",
                f"{ymp[code] / auto.mflops:.1f}",
            )
        )
    table = format_table(
        headers=(
            "code",
            "serial s",
            "KAP impr",
            "auto s",
            "auto impr",
            "no-sync s",
            "no-pref s",
            "MFLOPS",
            "YMP/Cedar",
        ),
        rows=rows,
        title="Table 3: Perfect Benchmarks on Cedar (automatable ladder)",
    )
    footer = (
        f"\nharmonic-mean MFLOPS: Cedar {result.harmonic_mean_mflops():.2f}, "
        f"YMP/Cedar ratio {result.ymp_ratio():.1f} "
        "(paper: 23.7 and 7.4; see EXPERIMENTS.md on the In/HM tension)"
    )
    return table + footer
