"""Memory-system characterization benchmarks ([GJTV91]).

The paper cites "the observed maximum bandwidth of memory system
characterization benchmarks" when discussing the rank-64 results.  This is
that suite: stride sweeps that expose the interleave structure of global
memory (stride 1 spreads over all 32 modules; any multiple of 32 hammers a
single module), and an aggregate-bandwidth probe versus CE count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import CE_CYCLE_SECONDS, CedarConfig, WORD_BYTES, active_config
from repro.hardware.ce import ArmFirePrefetch, ComputationalElement, ConsumePrefetch
from repro.kernels.common import KernelRun, MeasuredKernel, ce_base_address, run_measured


@dataclass(frozen=True)
class StridePoint:
    """Effective stream behaviour at one access stride."""

    stride: int
    modules_touched: int
    interarrival: float
    words_per_cycle_per_ce: float

    @property
    def megabytes_per_second_per_ce(self) -> float:
        return (
            self.words_per_cycle_per_ce * WORD_BYTES / CE_CYCLE_SECONDS / 1e6
        )


def modules_touched(stride: int, num_modules: int) -> int:
    """Distinct modules a stride-``stride`` stream visits (gcd structure)."""
    import math

    if stride == 0:
        raise ValueError("stride must be non-zero")
    return num_modules // math.gcd(abs(stride), num_modules)


def _stride_kernel(config: CedarConfig, stride: int, blocks: int):
    block = config.prefetch.compiler_block_words

    def factory(ce: ComputationalElement):
        base = ce_base_address(ce)
        for i in range(blocks):
            handle = yield ArmFirePrefetch(
                length=block, stride=stride,
                start_address=base + i * block * abs(stride),
            )
            yield ConsumePrefetch(handle, flops_per_element=0.0)

    return factory


def measure_stride(
    stride: int,
    num_ces: int = 8,
    config: Optional[CedarConfig] = None,
    blocks: int = 8,
) -> StridePoint:
    """One point of the stride sweep."""
    if config is None:
        config = active_config()
    kernel = MeasuredKernel(
        name=f"stride-{stride}",
        factory=lambda cfg, _n: _stride_kernel(cfg, stride, blocks),
    )
    run = run_measured(kernel, num_ces, config, warmup_fraction=0.2)
    interarrival = run.interarrival or 0.0
    return StridePoint(
        stride=stride,
        modules_touched=modules_touched(
            stride, config.global_memory.num_modules
        ),
        interarrival=interarrival,
        words_per_cycle_per_ce=(1.0 / interarrival) if interarrival else 0.0,
    )


def stride_sweep(
    strides: Sequence[int] = (1, 2, 4, 8, 16, 32),
    num_ces: int = 8,
    config: Optional[CedarConfig] = None,
) -> List[StridePoint]:
    """The classic interleave-structure sweep.

    Expectation on Cedar's double-word interleave over 32 modules: full
    bandwidth at stride 1 (all modules), graceful loss through stride 8,
    and collapse at stride 32 (every reference to one module, which then
    serializes at its word-cycle time).
    """
    return [measure_stride(s, num_ces, config) for s in strides]


def aggregate_bandwidth_megabytes(
    num_ces: int, config: Optional[CedarConfig] = None, blocks: int = 10
) -> float:
    """Delivered stride-1 aggregate bandwidth at a given CE count."""
    kernel = MeasuredKernel(
        name="bandwidth-probe",
        factory=lambda cfg, _n: _stride_kernel(cfg, 1, blocks),
    )
    run = run_measured(kernel, num_ces, config, warmup_fraction=0.2)
    if not run.interarrival:
        raise RuntimeError("bandwidth probe captured no statistics")
    per_ce_rate = 1.0 / run.interarrival
    return num_ces * per_ce_rate * WORD_BYTES / CE_CYCLE_SECONDS / 1e6
