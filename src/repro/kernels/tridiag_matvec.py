"""TM: tridiagonal matrix-vector multiply (Table 2).

y(i) = a(i)*x(i-1) + b(i)*x(i) + c(i)*x(i+1).  Per 32-element strip the CE
prefetches the operand vectors with compiler-generated 32-word prefetches
and performs the multiplies/adds as register-register vector operations
between memory streams, which "reduce[s] the demand on the memory system" --
the reason TM degrades less than VL and RK in the paper's Table 2.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CedarConfig, active_config
from repro.hardware.ce import (
    ArmFirePrefetch,
    Compute,
    ComputationalElement,
    ConsumePrefetch,
    GlobalStores,
)
from repro.kernels.common import KernelRun, MeasuredKernel, ce_base_address, run_measured

#: Strips per CE in the measurement window.
DEFAULT_STRIPS = 10

#: Register-register vector-op cycles per strip: two chained multiply-adds
#: (for the b*x and c*x terms) run register-to-register after the streams
#: land, costing startup + length each.
REGISTER_OP_CYCLES_PER_STRIP = 2 * (12 + 32)


def tridiag_kernel(config: CedarConfig, strips: int = DEFAULT_STRIPS):
    """Kernel factory for the TM strip loop."""
    block = config.prefetch.compiler_block_words

    def factory(ce: ComputationalElement):
        x_base = ce_base_address(ce, region=0)
        diag_base = ce_base_address(ce, region=1)
        y_base = ce_base_address(ce, region=2)
        for strip in range(strips):
            offset = strip * block
            # Stream x(i-1..i+1 window) and the three diagonals; the x
            # stream and main diagonal come through the PFU, each fused
            # with one chained multiply-add (2 flops/element).
            x_handle = yield ArmFirePrefetch(
                length=block, stride=1, start_address=x_base + offset
            )
            yield ConsumePrefetch(x_handle, flops_per_element=2.0)
            d_handle = yield ArmFirePrefetch(
                length=block, stride=1, start_address=diag_base + offset
            )
            yield ConsumePrefetch(d_handle, flops_per_element=2.0)
            # Off-diagonal terms combine in registers: no memory traffic.
            yield Compute(REGISTER_OP_CYCLES_PER_STRIP, flops=2.0 * block)
            yield GlobalStores(start_address=y_base + offset, length=block)

    return factory


def measure_tridiag(
    num_ces: int,
    config: Optional[CedarConfig] = None,
    strips: int = DEFAULT_STRIPS,
) -> KernelRun:
    """Run TM on ``num_ces`` CEs for the Table 2 latency columns."""
    kernel = MeasuredKernel(
        name="TM",
        factory=lambda cfg, _n: tridiag_kernel(cfg, strips=strips),
    )
    return run_measured(kernel, num_ces, config, warmup_fraction=0.2)
