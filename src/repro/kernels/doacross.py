"""DOACROSS execution with Test-And-Operate dependence enforcement [ZhYe87].

The Cedar synchronization instructions implement "a scheme to enforce data
dependence on large multiprocessor systems": a loop with carried
dependences of fixed distance runs as a DOACROSS, each iteration waiting
(Test >= on a per-element counter in global memory) until its producer has
posted, then posting for its own consumers.  This module runs such loops on
the cycle simulator, demonstrating both the correctness (no iteration ever
reads an unposted value) and the pipelining (wall-clock well under the
serial sum for large-enough bodies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import CedarConfig, active_config
from repro.hardware.ce import Compute, ComputationalElement, SyncInstruction
from repro.hardware.machine import CedarMachine
from repro.hardware.sync_processor import OperateOp, TestOp

#: Global-memory word used as the iteration-completion counter.
_COUNTER_ADDRESS = 4093


@dataclass
class DoacrossResult:
    """Outcome of one DOACROSS run."""

    iterations: int
    dependence_distance: int
    cycles: int
    completion_order: List[int]
    violations: int

    @property
    def enforced(self) -> bool:
        return self.violations == 0


def run_doacross(
    iterations: int,
    dependence_distance: int,
    body_cycles: int = 120,
    num_ces: int = 8,
    config: Optional[CedarConfig] = None,
) -> DoacrossResult:
    """Execute a distance-``d`` recurrence as a DOACROSS on ``num_ces`` CEs.

    Iteration ``i`` may start its body only after iteration ``i - d`` has
    completed.  Completion is posted by Test-And-Add on a global counter
    that tracks the highest prefix of finished iterations; waiting is a
    Test(>=)-And-Read spin against that counter -- both indivisible at the
    memory module, which is the whole point of the hardware.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if dependence_distance < 1:
        raise ValueError("dependence distance must be >= 1")
    machine = CedarMachine(config)
    completed: List[Optional[int]] = [None] * iterations  # finish cycles
    completion_order: List[int] = []
    violations = {"count": 0}
    # Prefix counter: number of iterations known complete.  Iterations
    # complete in order within a worker, but across workers the prefix
    # advances only when the next-expected iteration lands; a simple
    # "done flag per iteration" realized as per-iteration addresses.
    flag_base = 8191

    def worker(position: int):
        def kernel(ce: ComputationalElement):
            iteration = position
            while iteration < iterations:
                producer = iteration - dependence_distance
                if producer >= 0:
                    # Spin: Test(>= 1) on the producer's done flag.
                    while True:
                        outcome = yield SyncInstruction(
                            address=flag_base + producer,
                            test=TestOp.GE,
                            key=1,
                            op=OperateOp.READ,
                        )
                        if outcome.test_passed:
                            break
                    if completed[producer] is None:
                        violations["count"] += 1
                yield Compute(body_cycles, flops=2.0)
                completed[iteration] = ce.engine.now
                completion_order.append(iteration)
                yield SyncInstruction(
                    address=flag_base + iteration,
                    op=OperateOp.WRITE,
                    operand=1,
                )
                iteration += num_ces

        return kernel

    workers = [worker(p) for p in range(min(num_ces, iterations))]
    end = machine.run_per_ce(workers)
    return DoacrossResult(
        iterations=iterations,
        dependence_distance=dependence_distance,
        cycles=end,
        completion_order=completion_order,
        violations=violations["count"],
    )


def serial_cycles(iterations: int, body_cycles: int = 120) -> int:
    """The serial execution time of the same recurrence."""
    return iterations * body_cycles
