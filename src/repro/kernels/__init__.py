"""Computational kernels of Section 4.1.

These are the "well-understood algorithms and kernels which are much smaller
[than full codes] and can be modified easily to explore the system":

* :mod:`repro.kernels.vector_load` -- VL, a pure vector load stream.
* :mod:`repro.kernels.tridiag_matvec` -- TM, tridiagonal matrix-vector
  multiply (register-register work lowers its memory demand).
* :mod:`repro.kernels.rank_update` -- RK, the rank-64 update in its three
  memory-system versions (GM/no-pref, GM/pref, GM/cache) of Table 1.
* :mod:`repro.kernels.conjugate_gradient` -- CG, a simple conjugate-gradient
  solver on a 5-diagonal matrix (the PPT4 scalability workload).
* :mod:`repro.kernels.banded_matvec` -- banded matrix-vector product used in
  the CM-5 comparison.

Cited companion suites are here too: the [GJTV91] memory-system
characterization benchmarks (:mod:`repro.kernels.memory_characterization`)
and the [ZhYe87] DOACROSS dependence-enforcement demonstration
(:mod:`repro.kernels.doacross`).
"""

from repro.kernels.common import KernelRun, MeasuredKernel, run_measured
from repro.kernels.conjugate_gradient import cg_kernel, measure_cg
from repro.kernels.rank_update import (
    RankUpdateVersion,
    measure_rank_update,
    rank_update_kernel,
)
from repro.kernels.tridiag_matvec import measure_tridiag, tridiag_kernel
from repro.kernels.vector_load import measure_vector_load, vector_load_kernel

__all__ = [
    "KernelRun",
    "MeasuredKernel",
    "run_measured",
    "RankUpdateVersion",
    "rank_update_kernel",
    "measure_rank_update",
    "vector_load_kernel",
    "measure_vector_load",
    "tridiag_kernel",
    "measure_tridiag",
    "cg_kernel",
    "measure_cg",
]
