"""Shared measurement harness for the Section 4.1 kernels.

Full problem sizes (n = 1K matrices, N up to 172K vectors) are too large to
run word-by-word in a Python cycle simulator, so every kernel here simulates
a steady-state *window* -- enough repeated blocks per CE for the pipelines
and queues to reach equilibrium -- and extrapolates the delivered rate.
This is standard practice for cycle-level simulators and is safe because
the kernels are stationary streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import CE_CYCLE_SECONDS, CedarConfig, active_config
from repro.hardware.ce import ComputationalElement, KernelFactory
from repro.hardware.machine import CedarMachine

#: Distinct large strides between per-CE base addresses so that concurrent
#: streams start on different memory modules (matching the paper's data
#: layout, where each processor works on its own matrix panels).
BASE_ADDRESS_STRIDE = 1_048_579  # prime, > any kernel footprint


@dataclass(frozen=True)
class KernelRun:
    """Result of running one kernel window on the cycle simulator."""

    name: str
    num_ces: int
    cycles: int
    flops: float
    first_word_latency: Optional[float] = None
    interarrival: Optional[float] = None

    @property
    def seconds(self) -> float:
        return self.cycles * CE_CYCLE_SECONDS

    @property
    def mflops(self) -> float:
        return self.flops / self.seconds / 1e6

    @property
    def mflops_per_ce(self) -> float:
        return self.mflops / self.num_ces


@dataclass(frozen=True)
class MeasuredKernel:
    """A kernel factory plus how much floating-point work one CE declares."""

    name: str
    factory: Callable[[CedarConfig, int], KernelFactory]
    record_prefetch: bool = True


def run_measured(
    kernel: MeasuredKernel,
    num_ces: int,
    config: Optional[CedarConfig] = None,
    warmup_fraction: float = 0.0,
) -> KernelRun:
    """Run a kernel on ``num_ces`` CEs and collect Table 1/2 metrics.

    Args:
        kernel: What to run; its factory receives (config, blocks_per_ce).
        num_ces: CEs used, filled cluster by cluster (8 = one cluster).
        config: Machine configuration (default: the ambient
            :func:`repro.config.active_config`).
        warmup_fraction: Fraction of leading prefetches excluded from the
            latency statistics (ramp-up before queues reach steady state).
    """
    if config is None:
        config = active_config()
    machine = CedarMachine(config)
    factory = kernel.factory(config, num_ces)
    end = machine.run_kernel(factory, num_ces=num_ces)
    flops = machine.total_flops
    latency = interarrival = None
    handles = [
        h
        for ce in machine.ces(num_ces)
        for h in ce.pfu.completed
        if not h.invalidated or h.complete
    ]
    if kernel.record_prefetch and handles:
        skip = int(len(handles) * warmup_fraction)
        kept = handles[skip:] or handles
        for handle in kept:
            machine.monitor.record_prefetch(handle)
        latency, interarrival = machine.monitor.latency_summary()
    return KernelRun(
        name=kernel.name,
        num_ces=num_ces,
        cycles=end,
        flops=flops,
        first_word_latency=latency,
        interarrival=interarrival,
    )


def ce_base_address(ce: ComputationalElement, region: int = 0) -> int:
    """A per-CE, per-region base address spread across memory modules."""
    return ce.global_port * BASE_ADDRESS_STRIDE + region * 131_101
