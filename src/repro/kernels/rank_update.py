"""RK: the rank-64 update of Table 1, in its three memory-system versions.

The kernel computes a rank-64 update to an n x n matrix resident in global
memory: ``C += A * B`` with A being n x 64.  "The difference between the
versions lies in the mode of access of the data and the transfer of
subblocks to cluster cache":

* ``GM_NO_PREFETCH`` -- all vector accesses go to global memory with no
  prefetching: the CE is limited to two outstanding requests and the
  13-cycle latency (the paper's latency-bound floor, 14.5 MFLOPS/cluster).
* ``GM_PREFETCH`` -- identical access pattern but streamed through the PFU
  in 256-word blocks, aggressively overlapped with computation.
* ``GM_CACHE`` -- transfers submatrix panels into a cached work array in
  each cluster and runs all vector accesses against the cache.

All versions chain two operations (multiply + add) per memory request.
"""

from __future__ import annotations

from typing import Optional

import enum

from repro.config import CedarConfig, active_config
from repro.hardware.ce import (
    ArmFirePrefetch,
    Compute,
    ComputationalElement,
    ConsumePrefetch,
    GlobalLoads,
    GlobalStores,
    VectorCacheOp,
)
from repro.hardware.cluster_memory import move_global_to_cluster
from repro.kernels.common import KernelRun, MeasuredKernel, ce_base_address, run_measured

#: Rank of the update (the paper's rank-64).
RANK = 64

#: Aggressive prefetch block used by the hand-tuned RK (Section 4.1: "The RK
#: kernel prefetches blocks of 256 words").
RK_PREFETCH_BLOCK = 256


class RankUpdateVersion(enum.Enum):
    """The three Table 1 variants."""

    GM_NO_PREFETCH = "GM/no-pref"
    GM_PREFETCH = "GM/pref"
    GM_CACHE = "GM/cache"


def _no_prefetch_factory(config: CedarConfig, strips: int):
    """One column-strip iteration: 64 chained muladds straight from GM."""
    strip = config.vector.register_length

    def factory(ce: ComputationalElement):
        a_base = ce_base_address(ce, region=0)
        c_base = ce_base_address(ce, region=1)
        for s in range(strips):
            # C strip lives in a vector register across the 64 updates.
            yield GlobalLoads(
                start_address=c_base + s * strip, length=strip, flops_per_element=0.0
            )
            for k in range(RANK):
                yield GlobalLoads(
                    start_address=a_base + (s * RANK + k) * strip,
                    length=strip,
                    flops_per_element=2.0,
                )
            yield GlobalStores(start_address=c_base + s * strip, length=strip)

    return factory


def _prefetch_factory(config: CedarConfig, strips: int):
    """Same traffic, streamed through 256-word prefetches."""
    strip = config.vector.register_length
    block = RK_PREFETCH_BLOCK
    loads_per_strip = (RANK + 1) * strip  # C strip + 64 A strips

    def factory(ce: ComputationalElement):
        a_base = ce_base_address(ce, region=0)
        for s in range(strips):
            fetched = 0
            while fetched < loads_per_strip:
                chunk = min(block, loads_per_strip - fetched)
                handle = yield ArmFirePrefetch(
                    length=chunk,
                    stride=1,
                    start_address=a_base + s * loads_per_strip + fetched,
                )
                # Two chained flops per word, consumed as the words land.
                yield ConsumePrefetch(handle, flops_per_element=2.0)
                fetched += chunk
            yield GlobalStores(
                start_address=ce_base_address(ce, region=1) + s * strip,
                length=strip,
            )

    return factory


def _cache_factory(config: CedarConfig, strips: int):
    """Panels moved to the cluster work array; vector ops hit the cache.

    The A panel is moved to the work array once and reused across every C
    strip (the blocked algorithm's whole point), so the global traffic per
    strip is just C in and out.  Each rank-1 update is a register-memory
    multiply-add chained to the operand load; issuing the chained load
    costs one pipeline start-up on top of the muladd itself.
    """
    strip = config.vector.register_length
    issue_overhead = config.vector.startup_cycles

    def factory(ce: ComputationalElement):
        a_base = ce_base_address(ce, region=0)
        c_base = ce_base_address(ce, region=1)
        # This CE's share of the A panel, moved in once.
        panel_words = RANK * strip
        yield from move_global_to_cluster(ce, a_base, panel_words)
        for s in range(strips):
            yield from move_global_to_cluster(ce, c_base + s * strip, strip)
            # 64 register-memory muladds against the cached panel.
            for k in range(RANK):
                yield VectorCacheOp(length=strip, flops_per_element=2.0)
                yield Compute(issue_overhead)
            # C strip back to global memory.
            yield GlobalStores(start_address=c_base + s * strip, length=strip)

    return factory


_FACTORIES = {
    RankUpdateVersion.GM_NO_PREFETCH: _no_prefetch_factory,
    RankUpdateVersion.GM_PREFETCH: _prefetch_factory,
    RankUpdateVersion.GM_CACHE: _cache_factory,
}

#: Strips per CE in a measurement window, per version.  The no-prefetch
#: version is ~13x slower per word, so it needs fewer strips to reach
#: steady state within a reasonable event budget.
_DEFAULT_STRIPS = {
    RankUpdateVersion.GM_NO_PREFETCH: 1,
    RankUpdateVersion.GM_PREFETCH: 3,
    RankUpdateVersion.GM_CACHE: 6,
}


def rank_update_kernel(
    config: CedarConfig,
    version: RankUpdateVersion,
    strips: int | None = None,
):
    """Kernel factory for one RK version."""
    chosen = strips if strips is not None else _DEFAULT_STRIPS[version]
    return _FACTORIES[version](config, chosen)


def measure_rank_update(
    version: RankUpdateVersion,
    num_clusters: int,
    config: Optional[CedarConfig] = None,
    strips: int | None = None,
) -> KernelRun:
    """Table 1 cell: MFLOPS of one version on 1..4 clusters.

    The GM/cache version is measured over two windows and differenced so
    that the one-time A-panel move is amortized away, matching the paper's
    n = 1K matrix where the panel transfer is negligible against the
    O(n^2 * 64) arithmetic.
    """
    if config is None:
        config = active_config()

    def run(n_strips: int | None) -> KernelRun:
        kernel = MeasuredKernel(
            name=f"RK {version.value}",
            factory=lambda cfg, _n: rank_update_kernel(cfg, version, n_strips),
            record_prefetch=version is RankUpdateVersion.GM_PREFETCH,
        )
        return run_measured(kernel, num_clusters * config.ces_per_cluster, config)

    if version is not RankUpdateVersion.GM_CACHE:
        return run(strips)
    full_strips = strips if strips is not None else _DEFAULT_STRIPS[version]
    half = run(max(1, full_strips // 2))
    full = run(full_strips)
    return KernelRun(
        name=full.name,
        num_ces=full.num_ces,
        cycles=full.cycles - half.cycles,
        flops=full.flops - half.flops,
    )
