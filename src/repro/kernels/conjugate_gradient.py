"""CG: a simple conjugate-gradient solver on a 5-diagonal matrix.

Used twice by the paper: in Table 2 (global-data-with-prefetch latency
behaviour at 8/16/32 CEs) and for PPT4, where CG performance is measured
"while varying the number of processors from 2 to 32.  This computation
involves 5-diagonal matrix-vector products as well as vector and reduction
operations of size N, 1K <= N <= 172K."
"""

from __future__ import annotations

from typing import Optional

from repro.config import CE_CYCLE_SECONDS, CedarConfig, active_config
from repro.hardware.ce import (
    ArmFirePrefetch,
    Compute,
    ComputationalElement,
    ConsumePrefetch,
    GlobalStores,
    SyncInstruction,
)
from repro.hardware.sync_processor import OperateOp
from repro.kernels.common import KernelRun, MeasuredKernel, ce_base_address, run_measured

#: Flops in one CG iteration over an N-point 5-diagonal system: the matvec
#: (9N) plus two dot products (4N) and three AXPYs (6N).
FLOPS_PER_POINT = 19.0


#: Global-memory vector streams one CG iteration reads per strip: the five
#: matrix diagonals and x for the matvec, r and z for the dot products, and
#: p plus the AXPY operands.
READ_STREAMS_PER_STRIP = 9

#: Vectors written back per strip: q (= A p), x, r, p.
WRITE_STREAMS_PER_STRIP = 4

#: Scalar bookkeeping per strip (cycles): loop control, stripmine branches,
#: address arithmetic, and the scalar recurrence updates of the CG
#: iteration, executed on the 68020-class scalar unit.  Contention-
#: independent, so it costs the one-CE baseline and the 32-CE run alike.
SCALAR_OVERHEAD_PER_STRIP = 600


def cg_kernel(config: CedarConfig, points_per_ce: int, num_ces: int):
    """One CG iteration over this CE's share of the vectors.

    The matvec streams the five diagonals and x through 32-word prefetches
    with chained multiply-adds; the dot products stream r and z; the AXPYs
    re-stream their operands and write x, r, p and q back.  A slice of the
    arithmetic is register-register ("the presence of register-register
    vector operations which reduce the demand on the memory system" is why
    CG degrades less than VL/RK in Table 2), and the two reduction results
    are combined with Cedar synchronization instructions.
    """
    block = config.prefetch.compiler_block_words

    def factory(ce: ComputationalElement):
        bases = [ce_base_address(ce, region=r) for r in range(READ_STREAMS_PER_STRIP)]
        out_bases = [
            ce_base_address(ce, region=READ_STREAMS_PER_STRIP + r)
            for r in range(WRITE_STREAMS_PER_STRIP)
        ]
        strips = max(1, points_per_ce // block)
        for s in range(strips):
            offset = s * block
            # Eight streams carry chained multiply-adds (16 flops/point);
            # the ninth feeds register-resident operands.
            for stream, base in enumerate(bases):
                handle = yield ArmFirePrefetch(
                    length=block, stride=1, start_address=base + offset
                )
                flops = 2.0 if stream < 8 else 0.0
                yield ConsumePrefetch(handle, flops_per_element=flops)
            # Register-register remainder: 3 flops/point.
            yield Compute(12 + block, flops=3.0 * block)
            # Scalar loop control and address arithmetic.
            yield Compute(SCALAR_OVERHEAD_PER_STRIP)
            for base in out_bases:
                yield GlobalStores(start_address=base + offset, length=block)
        # Two reductions per iteration: combine partials in global memory
        # via Test-And-Add, then read the result back.
        for reduction in range(2):
            yield SyncInstruction(
                address=1009 + reduction, op=OperateOp.ADD, operand=1
            )

    return factory


#: Strip-simulation cap: beyond this many strips per CE the kernel is in
#: steady state and further strips cost the same marginal time.
SIM_STRIP_CAP = 10

#: Parallel-loop starts per CG iteration: the matvec, two dot products and
#: three AXPYs each spread one XDOALL through the run-time library, paying
#: the 90us start-up latency apiece.
LOOP_STARTS_PER_ITERATION = 6


def measure_cg(
    num_ces: int,
    points: int,
    config: Optional[CedarConfig] = None,
    max_strips: int = SIM_STRIP_CAP,
) -> KernelRun:
    """One CG iteration window over ``points`` unknowns on ``num_ces`` CEs.

    Large problems are truncated at ``max_strips`` strips per CE (the
    stream is stationary; see :func:`cg_time_cycles` for full-size timing).
    """
    if config is None:
        config = active_config()
    if points < num_ces:
        raise ValueError(f"problem size {points} smaller than CE count {num_ces}")
    per_ce = points // num_ces
    block = config.prefetch.compiler_block_words
    per_ce = min(per_ce, max_strips * block)
    kernel = MeasuredKernel(
        name="CG",
        factory=lambda cfg, n: cg_kernel(cfg, per_ce, n),
    )
    return run_measured(kernel, num_ces, config, warmup_fraction=0.2)


def cg_time_cycles(
    num_ces: int,
    points: int,
    config: Optional[CedarConfig] = None,
) -> float:
    """Cycles for one full CG iteration, extrapolating past the sim window.

    Simulates a half window and a full window at this CE count to separate
    the fixed overhead (loop startup, pipeline fill, reductions) from the
    marginal per-strip cost under contention, then extends linearly -- valid
    because the strip stream is stationary.  The global parallel-loop
    startup (90us XDOALL-style spread, Section 3.2) is added on top.
    """
    if config is None:
        config = active_config()
    block = config.prefetch.compiler_block_words
    strips_needed = max(1, (points // num_ces) // block)
    startup = LOOP_STARTS_PER_ITERATION * config.seconds_to_cycles(
        config.sync.xdoall_startup_seconds
    )
    if strips_needed <= SIM_STRIP_CAP:
        run = measure_cg(num_ces, points, config)
        return run.cycles + startup
    half = measure_cg(num_ces, num_ces * block * (SIM_STRIP_CAP // 2), config)
    full = measure_cg(num_ces, num_ces * block * SIM_STRIP_CAP, config)
    per_strip = (full.cycles - half.cycles) / (SIM_STRIP_CAP - SIM_STRIP_CAP // 2)
    fixed = full.cycles - SIM_STRIP_CAP * per_strip
    return fixed + strips_needed * per_strip + startup


def cg_mflops(num_ces: int, points: int, config: Optional[CedarConfig] = None) -> float:
    """Delivered MFLOPS of one CG iteration (PPT4's rate measure)."""
    cycles = cg_time_cycles(num_ces, points, config)
    flops = FLOPS_PER_POINT * points
    return flops / (cycles * CE_CYCLE_SECONDS) / 1e6
