"""Banded matrix-vector product workload (the PPT4 CM-5 comparison).

[FWPS92] reports matrix-vector products with bandwidths 3 and 11 on the
CM-5; the paper compares those to Cedar's CG.  This module defines the
workload arithmetically (operation counts, communication volume) so that
machine models -- Cedar's simulator or the CM-5 baseline -- can time it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BandedMatvec:
    """y = A x for a banded A of order ``n`` and total bandwidth ``bandwidth``."""

    n: int
    bandwidth: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"matrix order must be >= 1, got {self.n}")
        if self.bandwidth < 1 or self.bandwidth % 2 == 0:
            raise ValueError(
                f"bandwidth must be odd and >= 1, got {self.bandwidth}"
            )
        if self.bandwidth > self.n:
            raise ValueError("bandwidth cannot exceed the matrix order")

    @property
    def half_bandwidth(self) -> int:
        return self.bandwidth // 2

    @property
    def flops(self) -> float:
        """One multiply and one add per non-zero (~2 * bw * n)."""
        interior = 2.0 * self.bandwidth * self.n
        # Edge rows have fewer non-zeros; subtract the missing triangle.
        missing = self.half_bandwidth * (self.half_bandwidth + 1)
        return interior - 2.0 * missing

    @property
    def words_touched(self) -> float:
        """Memory words streamed: the band, x, and y."""
        return self.flops / 2.0 + 2.0 * self.n

    def halo_words(self, num_processors: int) -> float:
        """Boundary exchange per processor under a block-row partition."""
        if num_processors < 1:
            raise ValueError("need >= 1 processor")
        if num_processors == 1:
            return 0.0
        return 2.0 * self.half_bandwidth
