"""VL: the vector-load kernel of Table 2.

A pure stream of compiler-style 32-word prefetches from global memory,
consumed by vector loads.  "VF is also dominated by memory accesses but
degrades less quickly [than RK] due to the smaller prefetch block which
reduces access intensity."
"""

from __future__ import annotations

from typing import Optional

from repro.config import CedarConfig, active_config
from repro.hardware.ce import ArmFirePrefetch, ComputationalElement, ConsumePrefetch
from repro.kernels.common import KernelRun, MeasuredKernel, ce_base_address, run_measured

#: Blocks each CE streams in the measurement window.
DEFAULT_BLOCKS = 24


def vector_load_kernel(config: CedarConfig, blocks: int = DEFAULT_BLOCKS):
    """Kernel factory: ``blocks`` back-to-back 32-word prefetched loads."""
    block = config.prefetch.compiler_block_words

    def factory(ce: ComputationalElement):
        base = ce_base_address(ce)
        for i in range(blocks):
            handle = yield ArmFirePrefetch(
                length=block, stride=1, start_address=base + i * block
            )
            # A vector load moves the words to a register: one cycle per
            # element, no arithmetic.
            yield ConsumePrefetch(handle, flops_per_element=0.0)

    return factory


def measure_vector_load(
    num_ces: int,
    config: Optional[CedarConfig] = None,
    blocks: int = DEFAULT_BLOCKS,
) -> KernelRun:
    """Run VL on ``num_ces`` CEs; Table 2 reports its latency columns."""
    kernel = MeasuredKernel(
        name="VL",
        factory=lambda cfg, _n: vector_load_kernel(cfg, blocks=blocks),
    )
    return run_measured(kernel, num_ces, config, warmup_fraction=0.2)
