"""Reconstructed Table 3/4 targets used for calibration and validation.

The ISCA'93 scan of Table 3 is unreadable, so the per-code values here are a
*reconstruction*: they satisfy every legible statement in the paper --

* QCD improves 1.8x automatable and 20.8x by hand; hand QCD runs 21s at an
  11.4x improvement over automatable-with-prefetch-without-Cedar-sync.
* Table 4's times/improvements: ARC3D 68s/2.1, BDNA 70s/1.7, FL052 33s,
  DYFESM 31s, TRFD 7.5s/2.8, SPICE ~26s.
* Table 6's band census on automatable efficiency at P=32: 1 high,
  9 intermediate, 3 unacceptable.
* Figure 3's reading: about one-quarter of the hand-optimized codes high,
  three-quarters intermediate, none unacceptable.
* Table 5's instabilities: In(13,0) = 63.4 and In(13,2) = 5.8 for Cedar.
* DYFESM/OCEAN slow down without Cedar synchronization; prefetch matters
  most for codes dominated by global vector fetches; TRACK is dominated by
  scalar accesses; BDNA is dominated by formatted I/O; FL052 by multicluster
  barriers; TRFD's multicluster version by TLB-miss faults.

Note: the paper also quotes a Cedar harmonic-mean MFLOPS of 23.7/7.4 = 3.2;
that figure cannot hold simultaneously with In(13,0) = 63.4 over a single
MFLOPS ensemble (a 63x spread forces a minimum ~0.3 MFLOPS, which alone caps
the harmonic mean near 2).  We prioritize the Table 5 instabilities and
record the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class CodeTargets:
    """Reconstructed paper values for one code (see module docstring)."""

    serial_seconds: float
    kap_improvement: float
    auto_improvement: float
    no_sync_slowdown: float  # vs automatable
    no_prefetch_slowdown: float  # vs no-sync
    auto_mflops: float
    hand_seconds: Optional[float] = None
    hand_improvement: Optional[float] = None  # vs no-sync (Table 4's basis)


TARGETS: Dict[str, CodeTargets] = {
    "ADM": CodeTargets(950.0, 1.1, 5.4, 1.02, 1.10, 4.0),
    "ARC3D": CodeTargets(1430.0, 5.3, 11.0, 1.05, 1.07, 9.3, 68.0, 2.1),
    "BDNA": CodeTargets(770.0, 1.3, 6.5, 1.02, 1.05, 5.0, 70.0, 1.7),
    "DYFESM": CodeTargets(300.0, 2.5, 6.5, 1.40, 1.30, 6.0, 31.0, 2.1),
    "FLO52": CodeTargets(730.0, 6.0, 16.5, 1.10, 1.05, 19.0, 33.0, 1.5),
    "MDG": CodeTargets(3100.0, 1.1, 5.5, 1.02, 1.15, 4.5),
    "MG3D": CodeTargets(6050.0, 1.0, 8.0, 1.05, 1.25, 5.5),
    "OCEAN": CodeTargets(2150.0, 1.3, 5.0, 1.30, 1.10, 3.5),
    "QCD": CodeTargets(430.0, 1.0, 1.8, 1.00, 1.05, 1.8, 21.0, 11.4),
    "SPEC77": CodeTargets(3480.0, 1.2, 7.0, 1.10, 1.15, 6.5),
    "SPICE": CodeTargets(90.0, 1.0, 1.4, 1.05, 1.02, 0.32, 27.0, 2.6),
    "TRACK": CodeTargets(150.0, 1.0, 2.5, 1.10, 1.05, 1.8),
    "TRFD": CodeTargets(220.0, 2.0, 10.5, 1.02, 1.05, 8.5, 7.5, 2.8),
}
