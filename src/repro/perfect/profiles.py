"""Per-code workload profiles for the Perfect Benchmarks on Cedar.

A profile records, in machine-neutral terms, the program characteristics
that Sections 3.3/4.2 identify as driving each code's behaviour.  The
original Fortran sources and the Perfect input decks are not available to
us, so each profile is a reconstruction: the structural parameters are set
from the paper's per-code commentary and the companion CSRD reports, and
validated against every quantitative statement the paper makes (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class HandOptimization:
    """What the Section 4.2 hand tuning did to a code.

    Each field is a structural change applied on top of the automatable
    profile; the defaults mean "no change".
    """

    #: Multiply the flop count (ARC3D's "substantial number of unnecessary
    #: computations" elimination shrinks it below 1).
    flops_factor: float = 1.0
    #: Replace formatted with unformatted I/O (BDNA) or eliminate it (MG3D).
    unformatted_io: bool = False
    io_bytes_factor: float = 1.0
    #: Parallelize formerly serial phases (QCD's hand-coded parallel RNG).
    extra_coverage: float = 0.0
    #: Collapse sequences of multicluster barriers into one plus per-cluster
    #: barrier chains via the concurrency-control hardware (FL052).
    multicluster_barrier_factor: float = 1.0
    #: Better kernels / data reshaping: raises vector length and the
    #: prefetchable fraction (DYFESM, TRFD).
    vector_length: Optional[int] = None
    prefetchable_fraction: Optional[float] = None
    #: Distribute data to cluster memories (ARC3D, TRFD): converts this
    #: fraction of global traffic to cluster-memory traffic.
    distribute_global_fraction: float = 0.0
    #: Fix the multicluster TLB-fault pathology with a distributed-memory
    #: version (TRFD); when False the automatable multicluster run pays
    #: ``paging_seconds``.
    fix_paging: bool = False
    #: Algorithmic replacement of major phases (SPICE): scales the serial
    #: remainder's time.
    serial_factor: float = 1.0
    #: Exploit the hierarchical SDOALL/CDOALL control structure (DYFESM's
    #: [YaGa93] rewrite): cluster-level scheduling through the CCB.
    use_cluster_hierarchy: bool = False
    notes: str = ""


@dataclass(frozen=True)
class CodeProfile:
    """Workload model of one Perfect code.

    Attributes (volumes describe the *whole run* of the Perfect data set):
        name: Code name as in Table 3.
        description: What the application computes.
        total_flops: Floating-point operations (the monitor count used for
            MFLOPS).
        flops_per_word: Arithmetic intensity of the loop bodies.
        kap_coverage: Fraction of the flops inside loops the 1988 KAP
            retarget parallelizes.
        auto_coverage: Coverage after the automatable transformations
            (array privatization, parallel reductions, induction-variable
            substitution, run-time dependence tests, ...).
        trip_count: Typical parallel-loop trip count; bounds useful
            parallelism (DYFESM's "limited parallelism available").
        parallel_loop_instances: Dynamic count of parallel-loop starts
            (drives the 90us XDOALL start-up total).
        loop_flops_vector_fraction: Vectorized fraction inside parallel
            loop bodies.
        serial_vector_fraction: Vectorized fraction of the non-parallelized
            remainder in compiled versions.
        vector_length: Typical vector length.
        global_data_fraction: Fraction of loop traffic against GLOBAL data
            (the rest is cluster or loop-local after privatization).
        prefetchable_fraction: Fraction of that global traffic the compiler
            can cover with PFU blocks.
        scalar_memory_fraction: Non-vector (unprefetchable) access fraction
            (TRACK's "domination of scalar accesses").
        io_bytes: File I/O volume.
        io_formatted: Whether the I/O is formatted (BDNA).
        multicluster_barriers: Dynamic count of multicluster barrier
            sequences (FL052's pathology).
        reduction_elements: Elements combined in global reductions.
        paging_seconds: Extra virtual-memory time in multicluster runs
            (TRFD's TLB-fault storm).
        kap_single_cluster: Whether the Perfect-rules KAP run was confined
            to one cluster "to avoid intercluster overhead".
        hand: The Section 4.2 hand-optimization recipe, if the paper
            reports one.
    """

    name: str
    description: str
    total_flops: float
    flops_per_word: float
    kap_coverage: float
    auto_coverage: float
    trip_count: int
    parallel_loop_instances: int
    loop_vector_fraction: float
    serial_vector_fraction: float
    vector_length: int
    global_data_fraction: float
    prefetchable_fraction: float
    scalar_memory_fraction: float
    io_bytes: float = 0.0
    io_formatted: bool = False
    multicluster_barriers: int = 0
    reduction_elements: int = 0
    paging_seconds: float = 0.0
    kap_single_cluster: bool = False
    #: Fraction of the work units that are floating-point operations the
    #: hardware monitor counts (SPICE's work is mostly pointer chasing, so
    #: its fraction -- and hence its MFLOPS -- is tiny).
    monitor_flop_fraction: float = 1.0
    hand: Optional[HandOptimization] = None

    def __post_init__(self) -> None:
        for name in (
            "kap_coverage",
            "auto_coverage",
            "loop_vector_fraction",
            "serial_vector_fraction",
            "global_data_fraction",
            "prefetchable_fraction",
            "scalar_memory_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {name} must be in [0,1], got {value}")
        if self.kap_coverage > self.auto_coverage:
            raise ValueError(
                f"{self.name}: KAP cannot cover more than the automatable "
                "transformations"
            )
        if self.total_flops <= 0 or self.flops_per_word <= 0:
            raise ValueError(f"{self.name}: volumes must be positive")
        if self.trip_count < 1 or self.parallel_loop_instances < 1:
            raise ValueError(f"{self.name}: loop structure must be positive")

    @property
    def total_words(self) -> float:
        return self.total_flops / self.flops_per_word

    @property
    def monitor_flops(self) -> float:
        """Floating-point operations as the hardware monitor counts them."""
        return self.total_flops * self.monitor_flop_fraction

    def with_hand_optimization(self) -> "CodeProfile":
        """The profile after applying the Section 4.2 hand recipe."""
        if self.hand is None:
            raise ValueError(f"{self.name} has no hand-optimized version")
        hand = self.hand
        total_flops = self.total_flops * hand.flops_factor
        coverage = min(1.0, self.auto_coverage + hand.extra_coverage)
        if hand.serial_factor != 1.0:
            parallel = total_flops * coverage
            serial = total_flops * (1.0 - coverage) * hand.serial_factor
            total_flops = parallel + serial
            coverage = parallel / total_flops if total_flops > 0 else coverage
        changes = {
            "total_flops": total_flops,
            "io_bytes": self.io_bytes * hand.io_bytes_factor,
            "auto_coverage": coverage,
            "multicluster_barriers": int(
                self.multicluster_barriers * hand.multicluster_barrier_factor
            ),
        }
        if hand.unformatted_io:
            changes["io_formatted"] = False
        if hand.vector_length is not None:
            changes["vector_length"] = hand.vector_length
        if hand.prefetchable_fraction is not None:
            changes["prefetchable_fraction"] = hand.prefetchable_fraction
        if hand.distribute_global_fraction > 0.0:
            changes["global_data_fraction"] = self.global_data_fraction * (
                1.0 - hand.distribute_global_fraction
            )
        if hand.fix_paging:
            changes["paging_seconds"] = 0.0
        return replace(self, **changes)
