"""Running the Perfect suite on the analytic Cedar model (Tables 3 and 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.model.machine_model import CedarMachineModel
from repro.perfect.codes import ALL_PROFILES
from repro.perfect.profiles import CodeProfile
from repro.perfect.versions import Version, build_program, options_for

PERFECT_CODES: Dict[str, CodeProfile] = {p.name: p for p in ALL_PROFILES}


def code_names() -> List[str]:
    """The 13 Perfect code names, alphabetically."""
    return sorted(PERFECT_CODES)


def get_profile(name: str) -> CodeProfile:
    try:
        return PERFECT_CODES[name]
    except KeyError:
        raise KeyError(
            f"unknown Perfect code {name!r}; known: {', '.join(code_names())}"
        ) from None


@dataclass(frozen=True)
class PerfectResult:
    """One code at one version on the Cedar model."""

    code: str
    version: Version
    seconds: float
    serial_seconds: float
    mflops: float
    processors: int

    @property
    def improvement(self) -> float:
        """Speed improvement over the uniprocessor scalar version."""
        return self.serial_seconds / self.seconds

    @property
    def efficiency(self) -> float:
        return self.improvement / self.processors


def run_code(
    name: str,
    version: Version,
    model: Optional[CedarMachineModel] = None,
) -> PerfectResult:
    """Time one Perfect code at one restructuring level."""
    profile = get_profile(name)
    model = model or CedarMachineModel()
    serial = model.execute_serial(build_program(profile, Version.SERIAL))
    if version is Version.SERIAL:
        return PerfectResult(
            code=name,
            version=version,
            seconds=serial.seconds,
            serial_seconds=serial.seconds,
            mflops=_monitor_mflops(profile, serial.seconds),
            processors=1,
        )
    program = build_program(profile, version)
    options = options_for(version, profile)
    report = model.execute(program, options)
    monitor_flops_profile = (
        profile.with_hand_optimization() if version is Version.HAND else profile
    )
    return PerfectResult(
        code=name,
        version=version,
        seconds=report.seconds,
        serial_seconds=serial.seconds,
        mflops=_monitor_mflops(monitor_flops_profile, report.seconds),
        processors=report.processors,
    )


def _monitor_mflops(profile: CodeProfile, seconds: float) -> float:
    """MFLOPS using the hardware-monitor flop count, as the paper does."""
    return profile.monitor_flops / seconds / 1e6


def run_suite(
    versions: Sequence[Version] = tuple(Version),
    codes: Optional[Iterable[str]] = None,
    model: Optional[CedarMachineModel] = None,
) -> Dict[str, Dict[Version, PerfectResult]]:
    """The full Table 3 grid: every code at every requested version."""
    model = model or CedarMachineModel()
    selected = list(codes) if codes is not None else code_names()
    results: Dict[str, Dict[Version, PerfectResult]] = {}
    for name in selected:
        profile = get_profile(name)
        per_code: Dict[Version, PerfectResult] = {}
        for version in versions:
            if version is Version.HAND and profile.hand is None:
                continue
            per_code[version] = run_code(name, version, model)
        results[name] = per_code
    return results
