"""MG3D: 3D seismic migration.

Table 3's footnote: "This version of MG3D includes the elimination of file
I/O" -- the original writes enormous scratch files; the measured version
keeps the wavefield resident, so the profile carries no I/O section.  The
depth-extrapolation loops parallelize well once induction variables in the
trace bookkeeping are substituted (an automatable transformation).
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="MG3D",
    description="3D seismic migration (file I/O eliminated)",
    total_flops=7.115e9,
    flops_per_word=1.0,
    kap_coverage=0.02,
    auto_coverage=0.90,
    trip_count=48,
    parallel_loop_instances=60_000,
    loop_vector_fraction=0.90,
    serial_vector_fraction=0.10,
    vector_length=40,
    global_data_fraction=0.50,
    prefetchable_fraction=0.85,
    scalar_memory_fraction=0.05,
    monitor_flop_fraction=0.58,
    hand=HandOptimization(
        extra_coverage=0.04,
        distribute_global_fraction=0.30,
        notes="distribute wavefield panels to cluster memories",
    ),
)
