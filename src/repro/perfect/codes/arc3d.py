"""ARC3D: implicit 3D Euler/Navier-Stokes solver (ARC2D/ARC3D family).

One of the two codes KAP already handles well (regular dense loop nests
vectorize and parallelize readily).  Section 4.2: "Careful consideration of
ARC3D reveals a substantial number of unnecessary computations.  Primarily
due to their elimination but also due to aggressive data distribution into
cluster memory the execution time is reduced to 68 secs." [BrBo91]
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="ARC3D",
    description="Implicit finite-difference 3D Euler solver",
    total_flops=1.682e9,
    flops_per_word=2.0,
    kap_coverage=0.78,
    auto_coverage=0.91,
    trip_count=96,
    parallel_loop_instances=40_000,
    loop_vector_fraction=0.95,
    serial_vector_fraction=0.30,
    vector_length=48,
    global_data_fraction=0.60,
    prefetchable_fraction=0.85,
    scalar_memory_fraction=0.05,
    monitor_flop_fraction=0.72,
    hand=HandOptimization(
        flops_factor=0.55,
        distribute_global_fraction=0.70,
        notes="eliminate unnecessary computations; distribute data into "
        "cluster memories [BrBo91]",
    ),
)
