"""SPICE: analog circuit simulation (sparse LU + device evaluation).

The archetypal "very poor performer" the paper's stability discussion cites:
pointer-chasing sparse solves and scalar device models leave almost nothing
for the restructurer, and its tiny floating-point density gives it the
ensemble's minimum MFLOPS.  Section 4.2: "SPICE also benefits significantly
from algorithmic attention.  After considering all of the major phases of
the application and developing new approaches where needed the time is
reduced to approximately 26 secs."
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="SPICE",
    description="Analog circuit simulator (sparse LU, device evaluation)",
    total_flops=1.058e8,
    flops_per_word=0.8,
    kap_coverage=0.01,
    auto_coverage=0.35,
    trip_count=16,
    parallel_loop_instances=40_000,
    loop_vector_fraction=0.10,
    serial_vector_fraction=0.02,
    vector_length=8,
    global_data_fraction=0.60,
    prefetchable_fraction=0.30,
    scalar_memory_fraction=0.60,
    monitor_flop_fraction=0.21,
    hand=HandOptimization(
        serial_factor=0.36,
        extra_coverage=0.12,
        notes="new approaches in all major phases (reordered sparse solve, "
        "vectorized device evaluation)",
    ),
)
