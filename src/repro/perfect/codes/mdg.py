"""MDG: molecular dynamics of liquid water (flexible TIP4P-style model).

Long pair-interaction loops with accumulations into shared force arrays:
KAP's 1988 dependence tests give up on them, while array privatization plus
parallel (sum) reductions -- both automatable transformations -- recover
most of the run.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="MDG",
    description="Molecular dynamics of liquid water",
    total_flops=3.646e9,
    flops_per_word=1.2,
    kap_coverage=0.03,
    auto_coverage=0.82,
    trip_count=32,
    parallel_loop_instances=50_000,
    loop_vector_fraction=0.80,
    serial_vector_fraction=0.10,
    vector_length=32,
    global_data_fraction=0.50,
    prefetchable_fraction=0.80,
    scalar_memory_fraction=0.10,
    monitor_flop_fraction=0.7,
    hand=HandOptimization(
        extra_coverage=0.05,
        prefetchable_fraction=0.85,
        notes="interaction-list restructuring of the pair loops",
    ),
)
