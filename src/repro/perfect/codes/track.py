"""TRACK: missile-tracking (Kalman filtering over observation sets).

Small irregular data structures and conditional control flow: the code the
paper names for "a domination of scalar accesses", which also makes its
global traffic nearly prefetch-proof.  Restructuring finds some task-level
parallelism across tracks but little vector work.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="TRACK",
    description="Multi-target tracking with Kalman filters",
    total_flops=1.764e8,
    flops_per_word=0.8,
    kap_coverage=0.02,
    auto_coverage=0.68,
    trip_count=16,
    parallel_loop_instances=30_000,
    loop_vector_fraction=0.20,
    serial_vector_fraction=0.05,
    vector_length=8,
    global_data_fraction=0.60,
    prefetchable_fraction=0.30,
    scalar_memory_fraction=0.50,
    monitor_flop_fraction=0.675,
    hand=HandOptimization(
        extra_coverage=0.18,
        flops_factor=0.90,
        notes="restructure per-track state for privatized task parallelism",
    ),
)
