"""FLO52: transonic flow over an airfoil (multigrid Euler).

The best performer on Cedar, but at the Perfect problem size "four of the
five major routines in FL052 require a series of multicluster barriers
[whose] synchronization overhead degrades performance" (Section 4.2).  The
hand version introduces "a small amount of redundancy [to] transform the
sequence of multicluster barriers into a single multicluster barrier and
four independent sequences of barriers that can exploit the concurrency
control hardware in each cluster", plus eliminates recurrences, for 33s
[GJWY93].
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="FLO52",
    description="Transonic airfoil flow, multigrid Euler solver",
    total_flops=8.585e8,
    flops_per_word=2.0,
    kap_coverage=0.83,
    auto_coverage=0.965,
    trip_count=64,
    parallel_loop_instances=20_000,
    loop_vector_fraction=0.95,
    serial_vector_fraction=0.30,
    vector_length=48,
    global_data_fraction=0.40,
    prefetchable_fraction=0.85,
    scalar_memory_fraction=0.05,
    multicluster_barriers=39_000,
    monitor_flop_fraction=0.98,
    hand=HandOptimization(
        multicluster_barrier_factor=0.35,
        flops_factor=1.0,
        notes="single multicluster barrier + per-cluster barrier chains; "
        "eliminate recurrences in the remaining major routine [GJWY93]",
    ),
)
