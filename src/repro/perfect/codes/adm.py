"""ADM: pseudospectral air-pollution model (2D fluid + transport).

A mid-tier Perfect code on Cedar: the 1988 KAP retarget finds almost
nothing, while the automatable transformations (array privatization in the
transport sweeps, parallel reductions in the spectral sums) expose about 80%
of the work.  Moderate vector lengths; about half the loop data stays in
shared arrays after privatization.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="ADM",
    description="Pseudospectral air pollution (ADM/Shear) model",
    total_flops=1.117e9,
    flops_per_word=1.5,
    kap_coverage=0.05,
    auto_coverage=0.80,
    trip_count=32,
    parallel_loop_instances=30_000,
    loop_vector_fraction=0.85,
    serial_vector_fraction=0.15,
    vector_length=32,
    global_data_fraction=0.50,
    prefetchable_fraction=0.80,
    scalar_memory_fraction=0.10,
    monitor_flop_fraction=0.63,
    hand=HandOptimization(
        extra_coverage=0.06,
        prefetchable_fraction=0.88,
        notes="modest cleanup of the remaining spectral serial sections",
    ),
)
