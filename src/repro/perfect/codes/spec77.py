"""SPEC77: global spectral weather model.

Spectral transforms plus grid-space physics: the transforms vectorize and
parallelize well after privatization of the per-latitude work arrays; the
physics columns carry more scalar control flow.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="SPEC77",
    description="Global spectral atmospheric circulation model",
    total_flops=4.092e9,
    flops_per_word=1.5,
    kap_coverage=0.10,
    auto_coverage=0.86,
    trip_count=48,
    parallel_loop_instances=80_000,
    loop_vector_fraction=0.85,
    serial_vector_fraction=0.20,
    vector_length=32,
    global_data_fraction=0.50,
    prefetchable_fraction=0.80,
    scalar_memory_fraction=0.10,
    monitor_flop_fraction=0.79,
    hand=HandOptimization(
        extra_coverage=0.04,
        prefetchable_fraction=0.85,
        notes="fuse transform passes; distribute latitude bands",
    ),
)
