"""QCD: lattice gauge theory (quantum chromodynamics, Monte Carlo).

The measured run is throttled by its serial pseudo-random number generator:
the automatable version only reaches 1.8x.  Section 4.2: "If a hand-coded
parallel random number generator is used, QCD can be improved to yield a
speed improvement of 20.8 rather than the 1.8 reported for the automatable
code" -- an 11.4x improvement over the automatable/no-sync baseline, 21s.
Short SU(3) vectors keep the vector unit half idle either way.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="QCD",
    description="Lattice gauge theory Monte Carlo",
    total_flops=5.057e8,
    flops_per_word=1.0,
    kap_coverage=0.02,
    auto_coverage=0.45,
    trip_count=32,
    parallel_loop_instances=20_000,
    loop_vector_fraction=0.50,
    serial_vector_fraction=0.05,
    vector_length=12,
    global_data_fraction=0.40,
    prefetchable_fraction=0.70,
    scalar_memory_fraction=0.30,
    monitor_flop_fraction=0.87,
    hand=HandOptimization(
        extra_coverage=0.535,
        notes="hand-coded parallel random number generator",
    ),
)
