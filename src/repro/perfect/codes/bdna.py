"""BDNA: molecular dynamics of hydrated B-DNA.

The Perfect run is dominated by formatted trajectory output: Section 4.2
reduces BDNA to 70 seconds "by simply replacing formatted with unformatted
I/O".  The compute part (pair interactions with cut-offs) privatizes well.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="BDNA",
    description="Molecular dynamics of B-DNA in water",
    total_flops=8.44e8,
    flops_per_word=1.8,
    kap_coverage=0.28,
    auto_coverage=0.905,
    trip_count=32,
    parallel_loop_instances=25_000,
    loop_vector_fraction=0.85,
    serial_vector_fraction=0.20,
    vector_length=32,
    global_data_fraction=0.45,
    prefetchable_fraction=0.80,
    scalar_memory_fraction=0.10,
    io_bytes=11.5e6,
    io_formatted=True,
    monitor_flop_fraction=0.7,
    hand=HandOptimization(
        unformatted_io=True,
        notes="replace formatted with unformatted I/O",
    ),
)
