"""TRFD: two-electron integral transformation (quantum chemistry).

A sequence of matrix multiplications -- nearly ideal material, and the code
whose hand version exposed Cedar's virtual-memory pathology: the improved
multicluster version "was shown to have almost four times the number of
page faults relative to the one-cluster version and was spending close to
50% of the time in virtual memory activity.  The extra faults are TLB miss
faults as each additional cluster ... first accesses pages for which a
valid PTE exists in global memory" [AnGa93, MaEG92].  High-performance
cache/vector-register kernels cut it to 11.5s, and "a distributed memory
version of the code was developed to mitigate this problem and yielded a
final execution time of 7.5 secs."
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="TRFD",
    description="Two-electron integral transformation (matrix multiplies)",
    total_flops=2.587e8,
    flops_per_word=2.5,
    kap_coverage=0.50,
    auto_coverage=0.96,
    trip_count=64,
    parallel_loop_instances=5_000,
    loop_vector_fraction=0.95,
    serial_vector_fraction=0.30,
    vector_length=48,
    global_data_fraction=0.70,
    prefetchable_fraction=0.90,
    scalar_memory_fraction=0.03,
    paging_seconds=10.0,
    monitor_flop_fraction=0.69,
    hand=HandOptimization(
        fix_paging=True,
        extra_coverage=0.01,
        distribute_global_fraction=0.30,
        notes="blocked cache/vector-register kernels [AnGa93]; distributed-"
        "memory version eliminates the multicluster TLB-fault storm",
    ),
)
