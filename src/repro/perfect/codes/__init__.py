"""One module per Perfect Benchmarks code, each exporting ``PROFILE``."""

from repro.perfect.codes.adm import PROFILE as ADM
from repro.perfect.codes.arc3d import PROFILE as ARC3D
from repro.perfect.codes.bdna import PROFILE as BDNA
from repro.perfect.codes.dyfesm import PROFILE as DYFESM
from repro.perfect.codes.flo52 import PROFILE as FLO52
from repro.perfect.codes.mdg import PROFILE as MDG
from repro.perfect.codes.mg3d import PROFILE as MG3D
from repro.perfect.codes.ocean import PROFILE as OCEAN
from repro.perfect.codes.qcd import PROFILE as QCD
from repro.perfect.codes.spec77 import PROFILE as SPEC77
from repro.perfect.codes.spice import PROFILE as SPICE
from repro.perfect.codes.track import PROFILE as TRACK
from repro.perfect.codes.trfd import PROFILE as TRFD

ALL_PROFILES = (
    ADM,
    ARC3D,
    BDNA,
    DYFESM,
    FLO52,
    MDG,
    MG3D,
    OCEAN,
    QCD,
    SPEC77,
    SPICE,
    TRACK,
    TRFD,
)

__all__ = [
    "ADM",
    "ARC3D",
    "BDNA",
    "DYFESM",
    "FLO52",
    "MDG",
    "MG3D",
    "OCEAN",
    "QCD",
    "SPEC77",
    "SPICE",
    "TRACK",
    "TRFD",
    "ALL_PROFILES",
]
