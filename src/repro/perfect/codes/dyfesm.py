"""DYFESM: dynamic finite-element structural mechanics.

"The major problem with DYFESM is the very small problem size used in the
benchmark" (Section 4.2): parallel loops are fine-grained and few-way, so
loop self-scheduling cost matters ("parallel loops with relatively small
granularity requiring low-overhead self-scheduling support") and it
"benefits significantly from prefetch due to the large number of vector
fetches from global memory on a small number of processors (due to the
limited parallelism available)".  The [YaGa93] rewrite reshapes data
structures, reimplements key kernels against the prefetch unit, and uses
the hierarchical SDOALL/CDOALL control structure for a 31s run.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="DYFESM",
    description="Dynamic finite-element structural mechanics",
    total_flops=3.529e8,
    flops_per_word=1.5,
    kap_coverage=0.70,
    auto_coverage=0.977,
    trip_count=8,  # the "limited parallelism available"
    parallel_loop_instances=195_000,
    loop_vector_fraction=0.90,
    serial_vector_fraction=0.20,
    vector_length=24,
    global_data_fraction=0.90,
    prefetchable_fraction=0.85,
    scalar_memory_fraction=0.05,
    kap_single_cluster=True,
    monitor_flop_fraction=0.68,
    hand=HandOptimization(
        use_cluster_hierarchy=True,
        vector_length=28,
        prefetchable_fraction=0.87,
        notes="reshape data structures, hand-code kernels against the PFU "
        "in Xylem assembler, exploit SDOALL/CDOALL [YaGa93]",
    ),
)
