"""OCEAN: 2D ocean circulation (spectral / FFT based).

Many small parallel loops over 2D grids: like DYFESM it has "parallel loops
with relatively small granularity requiring low-overhead self-scheduling
support" -- the code that shows the clearest slowdown when the run-time
library cannot use the Cedar synchronization instructions.
"""

from repro.perfect.profiles import CodeProfile, HandOptimization

PROFILE = CodeProfile(
    name="OCEAN",
    description="2D ocean basin circulation model",
    total_flops=2.528e9,
    flops_per_word=1.2,
    kap_coverage=0.08,
    auto_coverage=0.90,
    trip_count=32,
    parallel_loop_instances=1_250_000,
    loop_vector_fraction=0.85,
    serial_vector_fraction=0.15,
    vector_length=32,
    global_data_fraction=0.50,
    prefetchable_fraction=0.80,
    scalar_memory_fraction=0.08,
    monitor_flop_fraction=0.6,
    hand=HandOptimization(
        extra_coverage=0.05,
        use_cluster_hierarchy=True,
        notes="fuse the small FFT loops and schedule them per cluster",
    ),
)
