"""Program versions of a Perfect code (the columns of Tables 3 and 4).

The measurement ladder follows the paper:

* ``SERIAL`` -- uniprocessor scalar baseline.
* ``KAP`` -- the 1988 KAP retarget ("Compiled by Kap/Cedar").
* ``AUTOMATABLE`` -- manually applied but automatable transformations, with
  compiler-generated prefetch and Cedar synchronization in the run-time
  library.
* ``AUTOMATABLE_NO_SYNC`` -- the same program without Cedar synchronization
  for loop scheduling (the "No Synchronization" column).
* ``AUTOMATABLE_NO_PREFETCH`` -- additionally without prefetching (the "No
  Prefetch" column, "given with respect to 'No Synchronization' results").
* ``HAND`` -- the Section 4.2 manual optimization ("We use prefetch but not
  Cedar synchronization").
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.lang.loops import (
    Barrier,
    Construct,
    Doall,
    IOSection,
    LoopKind,
    Reduction,
    SerialSection,
    VirtualMemoryActivity,
    Work,
)
from repro.lang.placement import Placement
from repro.lang.program import Program
from repro.lang.runtime import RuntimeOptions, Schedule
from repro.perfect.profiles import CodeProfile


class Version(enum.Enum):
    """One measured configuration of a Perfect code."""

    SERIAL = "serial"
    KAP = "kap"
    AUTOMATABLE = "automatable"
    AUTOMATABLE_NO_SYNC = "no-sync"
    AUTOMATABLE_NO_PREFETCH = "no-prefetch"
    HAND = "hand"


def options_for(version: Version, profile: CodeProfile) -> RuntimeOptions:
    """Run-time library configuration for a version."""
    if version is Version.KAP:
        return RuntimeOptions(single_cluster=profile.kap_single_cluster)
    if version is Version.AUTOMATABLE:
        return RuntimeOptions()
    if version is Version.AUTOMATABLE_NO_SYNC:
        return RuntimeOptions(use_cedar_sync=False)
    if version is Version.AUTOMATABLE_NO_PREFETCH:
        return RuntimeOptions(use_cedar_sync=False, use_prefetch=False)
    if version is Version.HAND:
        # Footnote to Table 4: "We use prefetch but not Cedar
        # synchronization" -- and the hand tunings statically schedule
        # their loops ("Both SDOALL and XDOALL loops can be statically
        # scheduled or self-scheduled via run-time library options").
        return RuntimeOptions(use_cedar_sync=False, schedule=Schedule.STATIC)
    return RuntimeOptions()


def build_program(profile: CodeProfile, version: Version) -> Program:
    """The workload-IR program of one code at one restructuring level."""
    if version is Version.HAND:
        return _structured_program(profile.with_hand_optimization(),
                                   coverage=None, hand=True)
    if version is Version.KAP:
        return _structured_program(profile, coverage=profile.kap_coverage,
                                   privatized=False)
    # SERIAL and the three automatable variants share the automatable
    # program structure; SERIAL is timed by execute_serial, and the no-sync
    # / no-prefetch variants differ only in RuntimeOptions.
    return _structured_program(profile, coverage=profile.auto_coverage)


def _structured_program(
    profile: CodeProfile,
    coverage: float | None,
    privatized: bool = True,
    hand: bool = False,
) -> Program:
    if coverage is None:
        coverage = profile.auto_coverage
    body: List[Construct] = []
    if profile.io_bytes > 0:
        body.append(
            IOSection(profile.io_bytes, formatted=profile.io_formatted, label="io")
        )

    parallel_flops = coverage * profile.total_flops
    serial_flops = profile.total_flops - parallel_flops
    words_per_flop = 1.0 / profile.flops_per_word

    if parallel_flops > 0:
        global_fraction = (
            profile.global_data_fraction
            if privatized
            # Without privatization/loop-local placement most shared data
            # stays GLOBAL (KAP's regime).
            else max(profile.global_data_fraction, 0.85)
        )
        body.extend(
            _parallel_loops(
                profile,
                parallel_flops,
                words_per_flop,
                global_fraction,
                hierarchical=hand
                and profile.hand is not None
                and profile.hand.use_cluster_hierarchy,
            )
        )

    if serial_flops > 0:
        # The serial remainder reads the same arrays the parallel loops
        # use: the globally-placed share pays global latency (and gains
        # from prefetch), the privatizable share stays in cluster memory.
        # Only data the restructurer actually globalized is affected, so
        # the GLOBAL share scales with the parallel coverage (variable
        # placement defaults to cluster memory on Cedar).
        serial_scalar = min(0.85, profile.scalar_memory_fraction + 0.15)
        # Only vectorizable array data gets the GLOBAL attribute (the
        # restructurer globalizes what the parallel vector loops stream),
        # so the serial remainder's exposure scales with both coverage and
        # vectorizability.
        serial_global = (
            profile.global_data_fraction
            * coverage
            * profile.loop_vector_fraction
        )
        for fraction, placement, label in (
            (serial_global, Placement.GLOBAL, "serial-global"),
            (1.0 - serial_global, Placement.CLUSTER, "serial-cluster"),
        ):
            if fraction <= 0:
                continue
            flops = serial_flops * fraction
            body.append(
                SerialSection(
                    Work(
                        flops=flops,
                        memory_words=flops * words_per_flop,
                        vector_fraction=profile.serial_vector_fraction,
                        vector_length=profile.vector_length,
                        scalar_memory_fraction=serial_scalar,
                    ),
                    placement=placement,
                    prefetchable_fraction=profile.prefetchable_fraction * 0.7,
                    label=label,
                )
            )

    if profile.multicluster_barriers > 0:
        body.append(
            Barrier(multicluster=True, count=profile.multicluster_barriers,
                    label="barriers")
        )
    if profile.reduction_elements > 0:
        body.append(Reduction(profile.reduction_elements, label="reductions"))
    if profile.paging_seconds > 0:
        body.append(
            VirtualMemoryActivity(profile.paging_seconds, label="paging")
        )
    return Program(
        name=profile.name, body=body, flop_count=profile.total_flops
    )


def _parallel_loops(
    profile: CodeProfile,
    parallel_flops: float,
    words_per_flop: float,
    global_fraction: float,
    hierarchical: bool,
) -> List[Construct]:
    """Split the parallel work into a GLOBAL-data loop and a privatized one."""
    loops: List[Construct] = []
    splits: List[Tuple[float, Placement, str]] = []
    if global_fraction > 0:
        splits.append((global_fraction, Placement.GLOBAL, "global-loops"))
    if global_fraction < 1:
        splits.append((1.0 - global_fraction, Placement.LOOP_LOCAL, "local-loops"))
    for fraction, placement, label in splits:
        # The dynamic loop starts divide between the splits in proportion
        # to their work (they are disjoint subsets of the code's loops).
        instances = max(1, round(profile.parallel_loop_instances * fraction))
        flops = parallel_flops * fraction
        per_iteration = flops / (instances * profile.trip_count)
        work = Work(
            flops=per_iteration,
            memory_words=per_iteration * words_per_flop,
            vector_fraction=profile.loop_vector_fraction,
            vector_length=profile.vector_length,
            scalar_memory_fraction=profile.scalar_memory_fraction,
        )
        if hierarchical:
            # The hand-restructured SDOALL/CDOALL nest: cluster-level
            # scheduling through the CCB instead of global-memory fetches.
            inner = Doall(
                kind=LoopKind.CDOALL,
                trip_count=max(1, profile.trip_count // 4),
                body=work,
                placement=placement,
                prefetchable_fraction=profile.prefetchable_fraction,
                label=f"{label}-cdoall",
            )
            loops.append(
                Doall(
                    kind=LoopKind.SDOALL,
                    trip_count=4,
                    body=[inner],
                    placement=placement,
                    prefetchable_fraction=profile.prefetchable_fraction,
                    instances=instances,
                    label=label,
                )
            )
        else:
            loops.append(
                Doall(
                    kind=LoopKind.XDOALL,
                    trip_count=profile.trip_count,
                    body=work,
                    placement=placement,
                    prefetchable_fraction=profile.prefetchable_fraction,
                    instances=instances,
                    label=label,
                )
            )
    return loops
