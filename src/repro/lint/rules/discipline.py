"""Discipline rules: static mirrors of the sanitizer's runtime invariants.

The hardware sanitizer (DESIGN.md SS7) checks these contracts per event at
runtime, when armed.  These rules pin the statically-decidable halves at
review time: ambient context must be snapshot at construction, hot-path
scheduling must keep the integer cycle clock, and the serve tier's event
loop must never block.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.core import FileContext, Finding, Rule, register

#: Methods where construction-time snapshotting is expected to happen.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__", "__set_name__"})


@register
class AmbientSnapshotRule(Rule):
    id = "disc.ambient-snapshot"
    title = "per-event read of ambient tracing()/sanitize.current()"
    rationale = (
        "Components snapshot the ambient tracer and sanitizer ONCE at\n"
        "construction (self._sanitizer = sanitize.current()); that is what\n"
        "makes disabled instrumentation cost one None-check and makes a\n"
        "run's observer set a function of how the machine was built, not\n"
        "of which context manager happens to be open when an event fires.\n"
        "Calling sanitize.current()/current_tracer() from any other method\n"
        "re-reads ambient state per event: it can silently attach a\n"
        "mid-run observer (perturbing sanitizer check counts across\n"
        "--partitions reassembly) and puts a stack probe on the hot path.\n"
        "Exempt: hardware/sanitize.py itself, whose one-shot violation\n"
        "report may read the tracer for error context."
    )
    scope = ("hardware", "partition", "trace")
    exempt = ("hardware/sanitize.py", "trace/tracer.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for klass in ast.walk(ctx.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            for method in klass.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in _CONSTRUCTORS:
                    continue
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    name = self._ambient_callee(node.func)
                    if name is not None:
                        yield ctx.finding(
                            self, node,
                            f"{name}() read in {klass.name}.{method.name}: "
                            "components must snapshot ambient context at "
                            "construction, not per event",
                        )

    @staticmethod
    def _ambient_callee(func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id == "current_tracer":
            return "current_tracer"
        if isinstance(func, ast.Attribute):
            if func.attr == "current_tracer":
                return "current_tracer"
            if func.attr == "current" and isinstance(func.value, ast.Name) and (
                func.value.id in ("sanitize", "sanitizer")
            ):
                return f"{func.value.id}.current"
        return None


@register
class UnvalidatedDelayRule(Rule):
    id = "disc.unvalidated-delay"
    title = "schedule_after() with a float-producing delay expression"
    rationale = (
        "Engine.schedule() validates its delay (integral, non-negative)\n"
        "and guards against off-queue calls; schedule_after() skips both\n"
        "checks for dispatch-critical hot paths, on the contract that the\n"
        "caller passes an already-validated int.  A delay built with true\n"
        "division (/) or a float literal produces a float: events drift\n"
        "off the integer cycle clock and the (time, seq) tie order that\n"
        "makes dispatch deterministic stops being total.  Use //, round\n"
        "explicitly, or call schedule() and pay for validation.  The\n"
        "sanitizer re-arms this check dynamically; this rule catches it\n"
        "in review."
    )
    scope = ("hardware", "partition")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "schedule_after"
                and node.args
            ):
                continue
            delay = node.args[0]
            hazard = self._float_hazard(delay)
            if hazard is not None:
                yield ctx.finding(
                    self, node,
                    f"schedule_after() delay {hazard}; the fast entry point "
                    "skips validation, so this breaks the integer cycle "
                    "clock silently",
                )

    @staticmethod
    def _float_hazard(delay: ast.AST) -> Optional[str]:
        for node in ast.walk(delay):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return "uses true division (/): the result is a float"
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                return f"contains the float literal {node.value!r}"
        return None


@register
class AsyncBlockingRule(Rule):
    id = "disc.async-blocking"
    title = "blocking call inside an async def in repro.serve"
    rationale = (
        "The serve tier is one asyncio event loop; a blocking call inside\n"
        "an async handler stalls EVERY in-flight request, SSE stream and\n"
        "health check behind one job -- the SSI/serving concern the\n"
        "Cluster Computing White Paper warns about.  time.sleep, sync\n"
        "file I/O (open), subprocess.* and socket/url reads must move to\n"
        "run_in_executor (how serve runs simulations) or an await-able\n"
        "API.  Nested sync defs are not flagged: that is the sanctioned\n"
        "pattern for closures handed to an executor."
    )
    scope = ("serve",)

    _BLOCKING_ATTRS: Tuple[Tuple[str, str], ...] = (
        ("time", "sleep"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
        ("os", "system"),
        ("os", "popen"),
        ("os", "waitpid"),
        ("socket", "create_connection"),
        ("urllib", "urlopen"),
        ("request", "urlopen"),
    )
    _BLOCKING_NAMES = frozenset({"open", "urlopen"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node)

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        stack: List[ast.AST] = []
        for stmt in func.body:
            stack.append(stmt)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs run elsewhere (executor) or re-checked
            if isinstance(node, ast.Call):
                label = self._blocking_label(node.func)
                if label is not None:
                    yield ctx.finding(
                        self, node,
                        f"{label}() blocks the event loop inside async "
                        f"{func.name}(); use run_in_executor or an "
                        "await-able API",
                    )
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_label(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in self._BLOCKING_NAMES:
            return func.id
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if (func.value.id, func.attr) in self._BLOCKING_ATTRS:
                return f"{func.value.id}.{func.attr}"
        return None
