"""Determinism rules: hazards that can leak into deterministic artifacts.

Scope: the packages whose output the byte-identity contract covers
(``hardware``, ``partition``, ``trace``, ``serve``, ``metrics`` -- see
``tests/test_determinism.py`` and DESIGN.md SS10).  Each rule names a
hazard class that would make rendered output, ``--json`` documents,
sanitizer summaries, ``--trace-out`` bytes or serve cache keys depend on
something other than the simulated machine: hash randomization, worker
arrival order, process addresses, the wall clock, the RNG, filesystem
enumeration order, or ambient environment state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Finding, Rule, register

#: Callables whose result does not depend on the iteration order of
#: their argument, so feeding them a set is harmless.  ``sum`` is listed
#: for integer counters; review float sums over sets by hand (float
#: addition is not associative).
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "len", "min", "max", "any", "all",
     "sum", "bool"}
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _is_set_annotation(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet")
    return False


class _SetTracker:
    """Which names in one scope are (only ever) bound to set values."""

    def __init__(self, scope: ast.AST) -> None:
        bindings: Dict[str, List[ast.AST]] = {}
        annotated: Set[str] = set()
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation):
                    annotated.add(node.target.id)
                elif node.value is not None:
                    bindings.setdefault(node.target.id, []).append(node.value)
        self.names: Set[str] = set(annotated)
        # Two passes so `b = a | extras` sees that `a` is a set; a name
        # ever rebound to a non-set expression (e.g. `s = sorted(s)`)
        # is dropped -- the rebinding is usually exactly the fix.
        for _ in range(2):
            for name, values in bindings.items():
                if name in self.names:
                    continue
                if values and all(self.is_set_expr(value) for value in values):
                    self.names.add(name)
        for name, values in bindings.items():
            if name in annotated:
                continue
            if name in self.names and not all(
                self.is_set_expr(value) for value in values
            ):
                self.names.discard(name)

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self.is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _order_safe_consumer(ctx: FileContext, comp: ast.AST) -> bool:
    """True when a comprehension's result feeds an order-insensitive call.

    ``sorted(f(x) for x in some_set)`` is fine; the sort re-establishes
    the order the set lost.  Set/dict comprehensions are themselves
    unordered collections, so building one from a set is also fine.
    """
    parent = ctx.parents.get(comp)
    if isinstance(parent, ast.Call) and comp in parent.args:
        func = parent.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SAFE_CALLS:
            return True
    return False


@register
class SetIterRule(Rule):
    id = "det.set-iter"
    title = "unsorted set iteration feeding an ordering-sensitive sink"
    rationale = (
        "Set iteration order depends on insertion history and on hash\n"
        "values -- for str keys that means PYTHONHASHSEED, which differs\n"
        "per process.  A worker that renders, joins, extends or merges in\n"
        "set order produces different bytes per run, which breaks the\n"
        "--jobs/--partitions byte-identity contract and poisons the serve\n"
        "tier's content-addressed cache.  Wrap the iteration in sorted()\n"
        "(or consume it with an order-insensitive reducer: len, min, max,\n"
        "any, all, set algebra, membership tests).  Integer sum() is\n"
        "accepted; sort float sums by hand -- float addition is not\n"
        "associative."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in _scopes(ctx.tree):
            tracker = _SetTracker(scope)
            for node in _scope_nodes(scope):
                yield from self._check_node(ctx, tracker, node)

    def _check_node(
        self, ctx: FileContext, tracker: _SetTracker, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and tracker.is_set_expr(
            node.iter
        ):
            yield ctx.finding(
                self, node, "for-loop over a set: order is not deterministic; "
                "iterate sorted(...) instead"
            )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if _order_safe_consumer(ctx, node):
                return
            for generator in node.generators:
                if tracker.is_set_expr(generator.iter):
                    yield ctx.finding(
                        self, node,
                        "comprehension over a set builds an ordered result "
                        "from unordered input; iterate sorted(...) instead",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "join", "extend",
            ):
                for arg in node.args:
                    if tracker.is_set_expr(arg):
                        yield ctx.finding(
                            self, node,
                            f".{func.attr}() over a set: element order is "
                            "not deterministic; pass sorted(...) instead",
                        )
            elif isinstance(func, ast.Name) and func.id in (
                "list", "tuple", "enumerate",
            ):
                for arg in node.args:
                    if tracker.is_set_expr(arg):
                        yield ctx.finding(
                            self, node,
                            f"{func.id}() of a set freezes a nondeterministic "
                            "order; use sorted(...) instead",
                        )


@register
class DictMergeOrderRule(Rule):
    id = "det.dict-merge-order"
    title = "merge loop over .values()/.items() of an arrival-ordered dict"
    rationale = (
        "dicts preserve insertion order -- which, for a dict filled from\n"
        "worker results, IS arrival order: a nondeterministic interleaving\n"
        "of process completions.  A loop that iterates .values()/.items()\n"
        "and .update()s an accumulator replays that interleaving into the\n"
        "merged artifact.  Iterate `for key in sorted(outputs):` so the\n"
        "merge is a pure function of the results, not of scheduling.\n"
        "(This exact hazard shipped in partition/runtime.py's shard merge\n"
        "and was fixed when this rule landed.)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iterator = node.iter
            if not (
                isinstance(iterator, ast.Call)
                and isinstance(iterator.func, ast.Attribute)
                and iterator.func.attr in ("values", "items")
                and not iterator.args
            ):
                continue
            for child in ast.walk(node):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "update"
                ):
                    yield ctx.finding(
                        self, node,
                        f"merging while iterating .{iterator.func.attr}() "
                        "replays the dict's insertion (arrival) order; "
                        "iterate `for key in sorted(d):` instead",
                    )
                    break


@register
class IdKeyRule(Rule):
    id = "det.id-key"
    title = "id()/hash() as an ordering key, dict key, or rendered value"
    rationale = (
        "id() is a process address and hash() of a str is salted per\n"
        "process (PYTHONHASHSEED): both differ across workers and across\n"
        "runs.  Sorting by them, keying a dict that is later iterated or\n"
        "serialized, or rendering them into text makes bytes depend on\n"
        "the allocator, not the simulated machine.  Key by a stable name\n"
        "or index instead.  In-process *identity ledgers* that are never\n"
        "ordered or serialized (the sanitizer's id(component) maps) are\n"
        "legitimate -- grandfather them in the baseline with a comment."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen: set = set()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("id", "hash")
            ):
                continue
            context = self._hazard_context(ctx, node)
            if context is None:
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield ctx.finding(
                self, node,
                f"{node.func.id}() {context}: process-address-dependent "
                "value in a determinism-sensitive position",
            )

    def _hazard_context(
        self, ctx: FileContext, node: ast.Call
    ) -> Optional[str]:
        previous: ast.AST = node
        for parent in ctx.parent_chain(node):
            if isinstance(parent, ast.Lambda):
                # A `key=lambda ...` hangs off an ast.keyword node, not
                # the sorted()/min()/max() Call itself.
                holder = ctx.parents.get(parent)
                if isinstance(holder, ast.keyword) and holder.arg == "key":
                    return "inside a sort key"
            elif isinstance(parent, ast.Subscript) and previous is parent.slice:
                return "as a dict/subscript key"
            elif isinstance(parent, ast.Dict) and previous in parent.keys:
                return "as a dict-literal key"
            elif isinstance(parent, (ast.JoinedStr, ast.FormattedValue)):
                return "rendered into text"
            elif isinstance(parent, ast.Call):
                func = parent.func
                if isinstance(func, ast.Name) and func.id in (
                    "str", "repr", "format",
                ):
                    return "rendered into text"
                if isinstance(func, ast.Attribute) and func.attr == "format":
                    return "rendered into text"
            elif isinstance(parent, ast.stmt):
                return None
            previous = parent
        return None


@register
class WallClockRule(Rule):
    id = "det.wall-clock"
    title = "wall-clock read in a simulation path"
    rationale = (
        "Simulated time is the engine's integer cycle clock; the paper's\n"
        "methodology depends on machine measurements being exactly\n"
        "reproducible.  time.time()/datetime.now() smuggle host time into\n"
        "results, so two runs of the same experiment stop agreeing.\n"
        "time.perf_counter()/time.monotonic() stay allowed: they feed\n"
        "self-profiling telemetry (wall_seconds, events/s) that is\n"
        "defined as nondeterministic and excluded from byte-identity\n"
        "comparisons.  Scope excludes nothing -- even serve latency\n"
        "metrics use monotonic()."
    )

    _TIME_ATTRS = frozenset(
        {"time", "time_ns", "ctime", "localtime", "gmtime", "asctime",
         "strftime"}
    )
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                if (
                    isinstance(value, ast.Name)
                    and value.id == "time"
                    and node.attr in self._TIME_ATTRS
                ):
                    yield ctx.finding(
                        self, node,
                        f"time.{node.attr} reads the wall clock; simulated "
                        "results must be a function of the cycle clock "
                        "(perf_counter/monotonic are fine for telemetry)",
                    )
                elif node.attr in self._DATETIME_ATTRS and (
                    (isinstance(value, ast.Name)
                     and value.id in ("datetime", "date"))
                    or (isinstance(value, ast.Attribute)
                        and value.attr in ("datetime", "date"))
                ):
                    yield ctx.finding(
                        self, node,
                        f"datetime {node.attr}() reads the wall clock in a "
                        "simulation path",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name in self._TIME_ATTRS
                )
                if bad:
                    yield ctx.finding(
                        self, node,
                        f"from time import {', '.join(bad)} hides a "
                        "wall-clock read behind a bare name",
                    )


@register
class RngRule(Rule):
    id = "det.rng"
    title = "ambient randomness in a simulation path"
    rationale = (
        "The module-level random.* functions share one process-global\n"
        "generator whose state depends on import order and on every other\n"
        "caller; os.urandom/uuid4/secrets are nondeterministic by design.\n"
        "Any of them in a sim path breaks run-to-run byte-identity and\n"
        "makes the serve cache key a lie.  Workloads that need randomness\n"
        "must thread an explicitly seeded random.Random(seed) instance\n"
        "through the experiment config, so the seed is part of the\n"
        "content address."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                if not isinstance(value, ast.Name):
                    continue
                if value.id == "random" and node.attr not in (
                    "Random", "SystemRandom",
                ):
                    yield ctx.finding(
                        self, node,
                        f"random.{node.attr} uses the process-global RNG; "
                        "thread a seeded random.Random(seed) from the "
                        "experiment config instead",
                    )
                elif value.id == "os" and node.attr == "urandom":
                    yield ctx.finding(
                        self, node, "os.urandom is nondeterministic by design"
                    )
                elif value.id == "uuid" and node.attr in ("uuid1", "uuid4"):
                    yield ctx.finding(
                        self, node,
                        f"uuid.{node.attr} is host/time/random dependent; "
                        "derive ids from content (sha256) instead",
                    )
                elif value.id == "secrets":
                    yield ctx.finding(
                        self, node,
                        "secrets.* is nondeterministic by design",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "random", "secrets",
            ):
                yield ctx.finding(
                    self, node,
                    f"from {node.module} import ... hides ambient "
                    "randomness behind bare names",
                )


@register
class FsOrderRule(Rule):
    id = "det.fs-order"
    title = "filesystem enumeration consumed without sorted()"
    rationale = (
        "os.listdir/os.scandir/glob/Path.glob return entries in\n"
        "filesystem order -- an artifact of inode allocation that differs\n"
        "between machines, filesystems and runs.  Anything downstream\n"
        "that renders, numbers or merges in that order is\n"
        "nondeterministic.  Wrap the call in sorted() at the source, even\n"
        "when the current consumer re-sorts later: the next caller of the\n"
        "helper will not know it has to."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: Optional[str] = None
            if isinstance(func, ast.Attribute):
                value = func.value
                if isinstance(value, ast.Name) and (
                    (value.id == "os" and func.attr in ("listdir", "scandir"))
                    or (value.id == "glob" and func.attr in ("glob", "iglob"))
                ):
                    flagged = f"{value.id}.{func.attr}"
                elif func.attr in ("glob", "rglob", "iterdir") and not (
                    isinstance(value, ast.Name) and value.id == "self"
                ):
                    flagged = f"Path.{func.attr}"
            if flagged is None:
                continue
            parent = ctx.parents.get(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"
            ):
                continue
            yield ctx.finding(
                self, node,
                f"{flagged}() yields entries in filesystem order; wrap the "
                "call in sorted() at the source",
            )


@register
class EnvReadRule(Rule):
    id = "det.env-read"
    title = "ambient os.environ read outside the config layer"
    rationale = (
        "Environment variables are ambient process state: two workers, or\n"
        "the serve tier and a CLI run, can disagree without anything in\n"
        "the experiment config saying so -- and the content-addressed\n"
        "result cache would happily serve one's bytes for the other's\n"
        "request.  Configuration must flow through repro.config (part of\n"
        "the experiment's identity) or be snapshot ONCE at import/\n"
        "construction into an explicit module switch (fastpath/sanitize\n"
        "pattern -- suppress those single reads with a commented noqa)."
    )
    exempt = ("config.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                if isinstance(value, ast.Name) and value.id == "os" and (
                    node.attr in ("environ", "getenv", "putenv")
                ):
                    yield ctx.finding(
                        self, node,
                        f"os.{node.attr} read in a sim path; route it "
                        "through repro.config or snapshot it once into an "
                        "explicit switch",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                if any(alias.name == "environ" for alias in node.names):
                    yield ctx.finding(
                        self, node,
                        "from os import environ hides ambient state behind "
                        "a bare name",
                    )


@register
class MpScopeRule(Rule):
    id = "det.mp-scope"
    title = "process/thread machinery outside the sanctioned runners"
    rationale = (
        "Every fork point is a determinism seam: it needs the merge-in-\n"
        "declared-order, crash-surfacing, byte-identity discipline that\n"
        "repro/parallel.py, partition/runtime.py and serve/jobs.py\n"
        "implement (and test_determinism.py pins).  multiprocessing or\n"
        "concurrent.futures anywhere else creates a second, unaudited\n"
        "seam whose arrival order can leak into artifacts.  Route new\n"
        "parallelism through parallel_map()/run_partitioned(), or extend\n"
        "the sanctioned allowlist deliberately (with its own determinism\n"
        "test) -- partition/split.py's ProcessSplitMachine is the one\n"
        "audited exception, suppressed at the import site."
    )
    exempt = ("partition/runtime.py", "serve/jobs.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in (
                        "multiprocessing", "concurrent",
                    ):
                        yield ctx.finding(
                            self, node,
                            f"import {alias.name} outside the sanctioned "
                            "runners (repro/parallel.py, "
                            "partition/runtime.py, serve/jobs.py)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] in ("multiprocessing", "concurrent"):
                    yield ctx.finding(
                        self, node,
                        f"from {node.module} import ... outside the "
                        "sanctioned runners",
                    )
            elif isinstance(node, ast.Attribute):
                value = node.value
                if isinstance(value, ast.Name) and value.id == "os" and (
                    node.attr in ("fork", "forkpty")
                    or node.attr.startswith("spawn")
                ):
                    yield ctx.finding(
                        self, node,
                        f"os.{node.attr} creates an unaudited process seam",
                    )
