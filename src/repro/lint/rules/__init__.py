"""Concrete rules; importing the package registers every rule."""

from repro.lint.rules import determinism, discipline  # noqa: F401
