"""Committed grandfather list for findings that are sanctioned, with reasons.

The gate is "zero non-baselined findings": a finding is either fixed, or
it appears here with a *comment* explaining why the pattern is safe (the
sanitizer's identity-keyed in-process ledgers, the tracer's snapshot-once
env switch).  Entries match by ``(rule, file)`` -- deliberately not by
line, so unrelated edits to a grandfathered file do not churn the
baseline -- and every entry must carry a non-empty comment: an
unexplained exemption is itself a lint error.

Stale entries (matching nothing anymore) are reported so the baseline
shrinks monotonically as debt is paid down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.core import Finding

#: Default committed baseline, relative to the working directory (CI and
#: the test-suite gate both run from the repo root).
DEFAULT_BASELINE = "LINT_BASELINE.json"

_VERSION = 1


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One grandfathered (rule, file) pair and the reason it is safe."""

    rule: str
    file: str
    comment: str

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        path = finding.path.replace(os.sep, "/")
        return path == self.file or path.endswith("/" + self.file)

    def to_json(self) -> Dict[str, str]:
        return {"rule": self.rule, "file": self.file, "comment": self.comment}


class Baseline:
    """Load/save/apply the grandfather list."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = sorted(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except OSError as error:
            raise LintError(f"cannot read baseline {path}: {error}") from error
        except ValueError as error:
            raise LintError(
                f"baseline {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(document, dict) or document.get("version") != _VERSION:
            raise LintError(
                f"baseline {path}: expected a version-{_VERSION} document"
            )
        entries = []
        for index, raw in enumerate(document.get("entries", [])):
            if not isinstance(raw, dict):
                raise LintError(f"baseline {path}: entry {index} not an object")
            missing = [k for k in ("rule", "file", "comment") if not raw.get(k)]
            if missing:
                raise LintError(
                    f"baseline {path}: entry {index} missing {missing}; "
                    "every grandfathered finding needs a rule, a file and "
                    "a non-empty comment explaining why it is safe"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    file=str(raw["file"]).replace(os.sep, "/"),
                    comment=str(raw["comment"]),
                )
            )
        return cls(entries)

    def save(self, path: str) -> None:
        document = {
            "version": _VERSION,
            "entries": [entry.to_json() for entry in sorted(self.entries)],
        }
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (new, grandfathered); plus stale entries."""
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        hits: Dict[BaselineEntry, int] = {entry: 0 for entry in self.entries}
        for finding in findings:
            matched = False
            for entry in self.entries:
                if entry.matches(finding):
                    hits[entry] += 1
                    matched = True
                    break
            (grandfathered if matched else new).append(finding)
        stale = [entry for entry in self.entries if hits[entry] == 0]
        return new, grandfathered, stale

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], comment: str
    ) -> "Baseline":
        """One entry per distinct (rule, file), all with ``comment``."""
        pairs = sorted({(f.rule, f.path) for f in findings})
        return cls(
            [BaselineEntry(rule=r, file=p, comment=comment) for r, p in pairs]
        )
