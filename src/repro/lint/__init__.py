"""`repro.lint`: static determinism & simulation-discipline analysis.

The dynamic half of the byte-identity contract lives in
``tests/test_determinism.py``; this package is the static half, run as
``cedar-repro lint`` and gated in CI.  See :mod:`repro.lint.core` for
the framework, :mod:`repro.lint.rules` for the rule catalogue
(documented in DESIGN.md SS11), and ``tests/lint/fixtures/`` for the
per-rule fire/clean proof pairs.
"""

from repro.errors import LintError
from repro.lint.core import (
    Finding,
    Report,
    Rule,
    UNKNOWN_RULE_ID,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    collect_files,
    get_rule,
    self_check,
)
from repro.lint.baseline import Baseline, BaselineEntry, DEFAULT_BASELINE
from repro.lint import rules as _rules  # noqa: F401  (registers the rules)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE",
    "Finding",
    "LintError",
    "Report",
    "Rule",
    "UNKNOWN_RULE_ID",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "collect_files",
    "get_rule",
    "self_check",
]
