"""AST analyzer framework for the determinism & discipline rules.

The repro's headline guarantee -- rendered output, ``--json`` documents,
sanitizer summaries and ``--trace-out`` bytes are identical for any
``--jobs N`` / ``--partitions N`` -- is enforced dynamically by
``tests/test_determinism.py`` *after* a hazard has been written.  This
module is the static half of that contract: every rule in
:mod:`repro.lint.rules` names one hazard class (unordered iteration into
an ordering-sensitive sink, wall clock or RNG in a sim path, identity in
a rendered artifact, ...) and pins it at review time, before it can turn
into a flaky byte-diff three PRs later.

Framework pieces:

* :class:`Finding` -- one ``file:line:col: rule-id message`` record.
* :class:`Rule` -- base class; subclasses register via :func:`register`
  and declare a ``scope`` of package paths under ``repro/`` (plus
  per-file ``exempt`` escape hatches, e.g. ``config.py`` for the env
  rule).  Files outside a ``repro`` package (fixtures, scratch trees)
  are checked by every rule.
* ``# cedar: noqa[rule-id]`` -- same-line suppression; a bare
  ``# cedar: noqa`` suppresses every rule on that line.  Unknown rule
  ids inside the brackets are themselves reported (``lint.unknown-rule``)
  so a typo cannot silently disarm a real suppression.
* :func:`analyze_paths` / :func:`analyze_source` -- the drivers; the
  committed grandfather list lives in :mod:`repro.lint.baseline`.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import LintError

#: The packages (relative to ``repro/``) whose code feeds deterministic
#: artifacts: the cycle simulator, the partitioned runtime, the trace
#: backbone, the serving tier, the metrics exporters and the machine
#: builder (whose sweep artifacts must be byte-stable across --jobs).
SIM_SCOPE: Tuple[str, ...] = (
    "hardware",
    "partition",
    "trace",
    "serve",
    "metrics",
    "builder",
)

#: Pseudo-rule id for a malformed/unknown suppression comment.
UNKNOWN_RULE_ID = "lint.unknown-rule"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, ordered for deterministic rendering."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self, baselined: bool = False) -> Dict[str, object]:
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "baselined": baselined,
        }


_NOQA_RE = re.compile(
    r"#\s*cedar:\s*noqa(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)


def _parse_noqa(source: str) -> Dict[int, Optional[frozenset]]:
    """``{line: suppressed rule ids}``; ``None`` means every rule.

    Comments are found with :mod:`tokenize` so a ``# cedar: noqa`` inside
    a string literal does not suppress anything.
    """
    suppressions: Dict[int, Optional[frozenset]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # analyze_source() raises on a real syntax error; don't double up.
        return suppressions
    for line, comment in comments:
        match = _NOQA_RE.search(comment)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[line] = None
        else:
            ids = frozenset(
                rule.strip() for rule in rules.split(",") if rule.strip()
            )
            suppressions[line] = ids
    return suppressions


def repro_relative(path: str) -> Optional[str]:
    """Path relative to the innermost ``repro`` package, or ``None``.

    ``src/repro/hardware/engine.py`` -> ``hardware/engine.py``; a fixture
    under ``tests/lint/fixtures`` has no ``repro`` segment and returns
    ``None`` (every rule applies to it).
    """
    parts = path.replace(os.sep, "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return None


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.rel = repro_relative(self.path)
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise LintError(
                f"{path}:{error.lineno or 0}: cannot parse: {error.msg}"
            ) from error
        self.noqa = _parse_noqa(source)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            rule=rule.id,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        rules = self.noqa.get(finding.line, ())
        if rules is None:  # bare `# cedar: noqa`
            return True
        return finding.rule in rules


class Rule:
    """One hazard class.  Subclass, set the metadata, implement check()."""

    #: Stable identifier, ``family.kebab-name`` (``det.set-iter``).
    id: str = ""
    #: One-line summary shown in listings.
    title: str = ""
    #: The determinism argument this rule protects, shown by --explain.
    rationale: str = ""
    #: Packages under ``repro/`` the rule applies to.
    scope: Tuple[str, ...] = SIM_SCOPE
    #: Repro-relative files the rule never applies to, with the reason
    #: documented in the rationale.
    exempt: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.rel is None:
            return True  # outside any repro package: fixtures, scratch
        if ctx.rel in self.exempt:
            return False
        return any(
            ctx.rel == prefix or ctx.rel.startswith(prefix + "/")
            for prefix in self.scope
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator: instantiate and index the rule by its id."""
    rule = rule_cls()
    if not rule.id or not rule.title or not rule.rationale:
        raise LintError(f"rule {rule_cls.__name__} is missing metadata")
    if rule.id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, in sorted-id order (deterministic output)."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


@dataclass
class Report:
    """The outcome of one analyzer pass (before baseline filtering)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0


def _check_unknown_suppressions(ctx: FileContext) -> Iterator[Finding]:
    """Report noqa comments naming rule ids that do not exist."""
    for line, rules in sorted(ctx.noqa.items()):
        if rules is None:
            continue
        for rule_id in sorted(rules):
            if rule_id not in _REGISTRY:
                yield Finding(
                    path=ctx.path,
                    line=line,
                    col=1,
                    rule=UNKNOWN_RULE_ID,
                    message=(
                        f"suppression names unknown rule {rule_id!r}; "
                        "a typo here silently disarms nothing -- fix the id"
                    ),
                )


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> Report:
    """Run ``rules`` (default: all registered) over one source string."""
    ctx = FileContext(path, source)
    active = list(rules) if rules is not None else all_rules()
    report = Report(files_checked=1)
    raw: List[Finding] = []
    for rule in active:
        if respect_scope and not rule.applies_to(ctx):
            continue
        raw.extend(rule.check(ctx))
    if rules is None:  # only the full pass polices suppression hygiene
        raw.extend(_check_unknown_suppressions(ctx))
    for finding in sorted(raw):
        if ctx.suppressed(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def analyze_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> Report:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            source = stream.read()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    return analyze_source(source, path, rules, respect_scope)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, sorted, caches skipped."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        if not os.path.isdir(path):
            raise LintError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name != "__pycache__" and not name.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(found))


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> Report:
    """Run the analyzer over files and directories; one merged report."""
    report = Report()
    for path in collect_files(paths):
        one = analyze_file(path, rules, respect_scope)
        report.findings.extend(one.findings)
        report.suppressed.extend(one.suppressed)
        report.files_checked += 1
    report.findings.sort()
    report.suppressed.sort()
    return report


def self_check(fixtures_dir: str) -> List[str]:
    """Prove every registered rule against its fire/clean fixture pair.

    Returns human-readable failure strings (empty == all rules proven).
    A rule whose ``fire.py`` stops firing -- or whose ``clean.py`` starts
    -- is a silently-broken checker; CI runs this so that fails loudly.
    """
    failures: List[str] = []
    for rule in all_rules():
        rule_dir = os.path.join(fixtures_dir, rule.id)
        for variant, expect_fire in (("fire.py", True), ("clean.py", False)):
            path = os.path.join(rule_dir, variant)
            if not os.path.isfile(path):
                failures.append(f"{rule.id}: missing fixture {path}")
                continue
            try:
                report = analyze_file(path, rules=[rule], respect_scope=False)
            except LintError as error:
                failures.append(f"{rule.id}: {error}")
                continue
            hits = [f for f in report.findings if f.rule == rule.id]
            if expect_fire and not hits:
                failures.append(
                    f"{rule.id}: {path} does not fire the rule"
                )
            elif not expect_fire and hits:
                failures.append(
                    f"{rule.id}: {path} unexpectedly fires: "
                    + "; ".join(f.render() for f in hits)
                )
    return failures
