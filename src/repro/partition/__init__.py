"""Partitioned parallel simulation (ROADMAP item 2).

Two layers:

* :mod:`repro.partition.split` -- *spatial* partitioning of one machine:
  the cluster side and the global-memory side each run on their own
  engine (optionally in separate processes), exchanging boundary
  messages under conservative-lookahead epochs
  (:mod:`repro.partition.epochs`) through credit-managed
  :mod:`repro.partition.boundary` channels.
* :mod:`repro.partition.runtime` -- *unit-level* partitioning of one
  experiment: independent machine-run units shard across worker
  processes and recombine deterministically.  This is the layer
  ``cedar-repro run --partitions N`` exposes.
"""

from repro.partition.boundary import (
    BoundaryChannel,
    BoundaryLink,
    BoundaryMessage,
    SenderTap,
)
from repro.partition.epochs import EpochScheduler, lookahead_cycles
from repro.partition.runtime import (
    WHOLE_UNIT,
    PartitionedRun,
    merge_profile_stats,
    plan_units,
    profile_top_from_stats,
    run_partitioned,
    shard_units,
)
from repro.partition.split import (
    FusedPartitionedMachine,
    ProcessSplitMachine,
    SplitPartitionedMachine,
)

__all__ = [
    "BoundaryChannel",
    "BoundaryLink",
    "BoundaryMessage",
    "SenderTap",
    "EpochScheduler",
    "lookahead_cycles",
    "WHOLE_UNIT",
    "PartitionedRun",
    "merge_profile_stats",
    "plan_units",
    "profile_top_from_stats",
    "run_partitioned",
    "shard_units",
    "FusedPartitionedMachine",
    "ProcessSplitMachine",
    "SplitPartitionedMachine",
]
