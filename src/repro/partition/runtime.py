"""Unit-sharded partitioned execution behind ``cedar-repro run --partitions N``.

An experiment that declares a unit decomposition (``Experiment.units`` /
``run_unit`` / ``combine``) is a bag of *independent machine runs*: every
Table 1 cell, every Table 2 (kernel, CE-count) point, every PPT4 CG timing
is its own simulator instance with its own engine, network and memory.
``run_partitioned`` shards those units round-robin across N worker
processes, runs each unit under a fresh per-unit tracer and sanitizer, and
reassembles the pieces **in declared unit order**:

* results re-enter through ``Experiment.combine`` exactly as the
  single-process ``run()`` builds them (``run()`` itself is implemented as
  ``combine({unit: run_unit(unit)})``), so the rendered artifact is
  byte-identical for any partition count;
* sanitizer summaries are summed per invariant class in unit order;
* per-unit trace buffers are spliced by :class:`~repro.trace.TraceMerger`
  in unit order, so ``--trace-out`` is byte-identical for any N;
* cProfile stats from every shard merge into one profile
  (:func:`merge_profile_stats`), so ``--profile`` covers worker time.

Experiments without a decomposition run as one :data:`WHOLE_UNIT` in
partition 0; extra partitions simply stay idle, preserving output
byte-identity rather than refusing the flag.

The *spatial* partitioning of one machine run (cluster side vs memory
side exchanging boundary messages under conservative-lookahead epochs)
lives in :mod:`repro.partition.split`; this module is the coarser
unit-level layer that the CLI exposes, and its telemetry reports the same
per-partition events/s and barrier-stall numbers.
"""

from __future__ import annotations

import cProfile
import gc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.registry import get_experiment
from repro.hardware.sanitize import sanitizing
from repro.trace import TraceMerger, Tracer, tracing

#: Unit name used for experiments without a declared decomposition.
WHOLE_UNIT = "__whole__"

#: Ring size for the per-unit telemetry tracers used when ``--trace-out``
#: is absent: counter totals (the events/s source) are exact regardless of
#: ring capacity, so a small ring keeps the overhead negligible.
TELEMETRY_RECORDS = 1024


def plan_units(key: str) -> List[str]:
    """The experiment's declared unit names, or ``[WHOLE_UNIT]``."""
    experiment = get_experiment(key)
    if experiment.units is None:
        return [WHOLE_UNIT]
    return list(experiment.units())


def shard_units(units: List[str], partitions: int) -> List[List[str]]:
    """Round-robin assignment of units to partitions (deterministic)."""
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    return [units[p::partitions] for p in range(partitions)]


def _run_units(
    key: str,
    units: List[str],
    sanitized: bool,
    traced: bool,
    instrumented: bool = True,
) -> Dict[str, object]:
    """Run one shard's units in order; collect per-unit artifacts.

    Every unit gets a *fresh* tracer and (when armed) a *fresh* sanitizer:
    the unit, not the shard, is the determinism boundary, so per-unit
    artifacts reassemble identically however units are sharded.

    ``instrumented=False`` runs each unit with a *disabled* tracer -- the
    true fast path, no counters or timeline events on any hot path -- so
    the shard's wall time measures only the simulator.  Event counts then
    read as zero; callers wanting a rate divide the (deterministic) event
    count from an instrumented run of the same units by this wall time.
    """
    experiment = get_experiment(key)
    results: Dict[str, object] = {}
    summaries: Dict[str, Dict[str, object]] = {}
    traces: Dict[str, bytes] = {}
    events = 0.0
    records_seen = 0
    overhead_seconds = 0.0
    per_record_ns = 0.0
    for unit in units:
        if unit == WHOLE_UNIT:
            run_one = experiment.run
        else:
            run_one = lambda: experiment.run_unit(unit)  # noqa: E731
        if traced:
            tracer = Tracer(enabled=True)
        elif instrumented:
            tracer = Tracer(enabled=True, max_records=TELEMETRY_RECORDS)
        else:
            tracer = Tracer(enabled=False)
        began = time.perf_counter()
        with tracing(tracer):
            if sanitized:
                with sanitizing() as sanitizer:
                    result = run_one()
                sanitizer.finalize()
                summaries[unit] = sanitizer.summary()
            else:
                result = run_one()
        wall = time.perf_counter() - began
        results[unit] = result
        events += sum(
            counters.get("events_dispatched", 0)
            for counters in tracer.counter_totals().values()
        )
        if traced:
            traces[unit] = tracer.snapshot().to_bytes()
            overhead = tracer.overhead_estimate(wall)
            records_seen += tracer.records_seen
            overhead_seconds += overhead["overhead_seconds"]
            per_record_ns = overhead["per_record_ns"]
    return {
        "results": results,
        "sanitizers": summaries,
        "traces": traces,
        "events": events,
        "overhead": {
            "records_seen": records_seen,
            "overhead_seconds": overhead_seconds,
            "per_record_ns": per_record_ns,
        },
    }


def _shard_worker(payload: Tuple) -> Dict[str, object]:
    """Worker-process entry: run one partition's shard of units.

    The cyclic garbage collector pauses around the timed region -- the
    same ``timeit`` policy the bench harness applies -- so the shard's
    events/s measures the simulator, not collector pauses.
    """
    key, units, sanitized, traced, profiled, instrumented = payload
    profiler = cProfile.Profile() if profiled else None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    began = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        output = _run_units(key, units, sanitized, traced, instrumented)
        wall_seconds = time.perf_counter() - began
    finally:
        if profiler is not None:
            profiler.disable()
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    output["wall_seconds"] = wall_seconds
    if profiler is not None:
        profiler.create_stats()
        output["profile"] = profiler.stats  # plain dict: picklable
    return output


def merge_profile_stats(
    stats_list: List[Dict[Tuple, Tuple]]
) -> Dict[Tuple, Tuple]:
    """Sum cProfile stats dicts from several processes into one.

    Each entry maps ``(file, line, func)`` to ``(cc, nc, tt, ct,
    callers)``; primitive/total call counts and times add, and the callers
    sub-dicts add element-wise -- the same arithmetic
    ``pstats.Stats.add`` performs, minus the file round-trip it requires.
    """
    merged: Dict[Tuple, Tuple] = {}
    for stats in stats_list:
        for func, (cc, nc, tt, ct, callers) in stats.items():
            if func not in merged:
                merged[func] = (cc, nc, tt, ct, dict(callers))
                continue
            mcc, mnc, mtt, mct, mcallers = merged[func]
            for caller, counts in callers.items():
                if caller in mcallers:
                    mcallers[caller] = tuple(
                        a + b for a, b in zip(mcallers[caller], counts)
                    )
                else:
                    mcallers[caller] = counts
            merged[func] = (mcc + cc, mnc + nc, mtt + tt, mct + ct, mcallers)
    return merged


def profile_top_from_stats(
    stats: Dict[Tuple, Tuple], top: int
) -> List[Dict[str, object]]:
    """The ``top`` hottest functions by total time, as JSON-safe records."""
    ordered = sorted(stats.items(), key=lambda item: (-item[1][2], item[0]))
    rows: List[Dict[str, object]] = []
    for func, (cc, nc, tt, ct, _callers) in ordered[:top]:
        filename, line, name = func
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    return rows


@dataclass
class PartitionedRun:
    """Everything one partitioned experiment run produced."""

    key: str
    partitions: int
    result: object
    rendered: str
    #: Aggregated sanitizer summary (unit summaries summed in unit order),
    #: ``None`` unless the run was sanitized.
    sanitizer: Optional[Dict[str, object]]
    #: Merged trace snapshot wire bytes (unit buffers merged in unit
    #: order), ``None`` unless traced.
    trace_bytes: Optional[bytes]
    trace_meta: Optional[Dict[str, object]]
    #: Merged cProfile stats across all partitions, ``None`` unless
    #: profiled.
    profile_stats: Optional[Dict[Tuple, Tuple]]
    #: ``partitions`` / ``events_dispatched`` / ``events_per_sec`` /
    #: ``partition_stats`` -- the per-partition throughput accounting.
    telemetry: Dict[str, object]


def _aggregate_sanitizer(
    units: List[str], summaries: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    checks: Dict[str, int] = {}
    violations = 0
    for unit in units:
        summary = summaries[unit]
        for name, count in summary["checks"].items():
            checks[name] = checks.get(name, 0) + count
        violations += summary["violations"]
    return {
        "enabled": True,
        "checks": {name: checks[name] for name in sorted(checks)},
        "total_checks": sum(checks.values()),
        "violations": violations,
    }


def run_partitioned(
    key: str,
    partitions: int,
    sanitized: bool = False,
    traced: bool = False,
    profiled: bool = False,
    instrumented: bool = True,
) -> PartitionedRun:
    """Run one experiment sharded across ``partitions`` worker processes.

    ``partitions == 1`` runs the same per-unit code path in-process, so
    the outputs (rendered text, combined result, sanitizer summary,
    merged trace bytes) are byte-identical for any partition count; only
    the wall-clock telemetry differs.

    ``instrumented=False`` (bench timing mode) disables the per-unit
    tracers entirely so shard wall time measures the bare fast path;
    event counts in the telemetry read as zero and the caller supplies a
    deterministic count from an instrumented run.  Tracing implies
    instrumentation, so ``traced=True`` overrides it.
    """
    # Imported here to keep repro.partition importable without the
    # multiprocessing machinery (and to avoid import cycles in workers).
    from repro.parallel import parallel_map

    instrumented = instrumented or traced
    units = plan_units(key)
    shards = shard_units(units, partitions)
    outputs: Dict[int, Dict[str, object]] = {}
    began = time.perf_counter()
    if partitions == 1:
        outputs[0] = _shard_worker(
            (key, shards[0], sanitized, traced, profiled, instrumented)
        )
    else:
        tasks = []
        index_of: Dict[str, int] = {}
        for p, shard in enumerate(shards):
            if not shard:
                continue  # more partitions than units: leave it idle
            task_key = f"{key}[p{p}]"
            index_of[task_key] = p
            tasks.append(
                (task_key, (key, shard, sanitized, traced, profiled, instrumented))
            )
        for task_key, output in parallel_map(
            _shard_worker, tasks, jobs=len(tasks)
        ):
            outputs[index_of[task_key]] = output
    total_wall = time.perf_counter() - began

    experiment = get_experiment(key)
    unit_results: Dict[str, object] = {}
    unit_summaries: Dict[str, Dict[str, object]] = {}
    unit_traces: Dict[str, bytes] = {}
    # Partition order, NOT outputs.values(): the dict fills in worker
    # *arrival* order, and replaying that interleaving into the merge
    # would make the combined artifacts scheduling-dependent
    # (det.dict-merge-order -- the finding that motivated the rule).
    for p in sorted(outputs):
        output = outputs[p]
        unit_results.update(output["results"])
        unit_summaries.update(output["sanitizers"])
        unit_traces.update(output["traces"])
    if experiment.units is None:
        result = unit_results[WHOLE_UNIT]
    else:
        result = experiment.combine(unit_results)
    rendered = experiment.render(result)

    summary = _aggregate_sanitizer(units, unit_summaries) if sanitized else None

    trace_bytes: Optional[bytes] = None
    trace_meta: Optional[Dict[str, object]] = None
    if traced:
        merger = TraceMerger()
        for unit in units:
            merger.add(unit_traces[unit])
        merged = merger.merge()
        trace_bytes = merged.to_bytes()
        # Sum in partition order: float addition is not associative, so
        # an arrival-order sum would wobble in the last bits run to run.
        overhead_seconds = sum(
            outputs[p]["overhead"]["overhead_seconds"] for p in sorted(outputs)
        )
        per_record_ns = max(
            output["overhead"]["per_record_ns"] for output in outputs.values()
        )
        trace_meta = {
            "records": merged.num_records,
            "records_seen": merged.records_seen,
            "dropped": merged.dropped,
            "buffer_bytes": merged.buffer_bytes,
            "overhead_ratio": (
                overhead_seconds / total_wall if total_wall > 0 else 0.0
            ),
            "overhead_per_record_ns": per_record_ns,
        }

    profile_stats: Optional[Dict[Tuple, Tuple]] = None
    if profiled:
        profile_stats = merge_profile_stats(
            [outputs[p]["profile"] for p in sorted(outputs)]
        )

    partition_stats: List[Dict[str, object]] = []
    total_events = 0.0
    for p, shard in enumerate(shards):
        output = outputs.get(p)
        events = float(output["events"]) if output else 0.0
        wall = float(output["wall_seconds"]) if output else 0.0
        total_events += events
        partition_stats.append(
            {
                "partition": p,
                "units": len(shard),
                "events_dispatched": events,
                "wall_seconds": wall,
                "events_per_sec": events / wall if wall > 0 else 0.0,
                # Time this partition spent finished-but-waiting at the
                # end-of-run barrier for the slowest shard.
                "barrier_stall_seconds": max(0.0, total_wall - wall),
            }
        )
    telemetry: Dict[str, object] = {
        "partitions": partitions,
        "units": len(units),
        "events_dispatched": total_events,
        "wall_seconds": total_wall,
        "events_per_sec": total_events / total_wall if total_wall > 0 else 0.0,
        "partition_stats": partition_stats,
    }
    return PartitionedRun(
        key=key,
        partitions=partitions,
        result=result,
        rendered=rendered,
        sanitizer=summary,
        trace_bytes=trace_bytes,
        trace_meta=trace_meta,
        profile_stats=profile_stats,
        telemetry=telemetry,
    )
