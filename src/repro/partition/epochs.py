"""Conservative-lookahead epoch synchronization across partitions.

Cedar's omega networks have a fixed *minimum* traversal latency -- every
packet spends at least one cycle per stage
(``stages × stage_latency_cycles``), and the boundary channels model the
cut with exactly that latency.  That bound is the conservative lookahead
of classic parallel discrete-event simulation (PARENDI, arXiv:2403.04714):
during an epoch of length ``L`` no partition can observe a message its
peer sent in the same epoch, because a send at cycle ``c`` delivers at
``c + L``, which is provably past the epoch's end.  Each engine therefore
dispatches a whole epoch without null messages or rollback, and partitions
exchange staged messages plus credit returns only at the barrier.

:class:`EpochScheduler` drives any number of engines (one per partition;
the fused machine passes the same engine twice) through lockstep epochs:

1. stamp the epoch on every channel,
2. ``engine.run(until=epoch_end)`` for each partition in order,
3. barrier: drain each channel's outboxes in declaration order and
   schedule deliveries on the destination engine at ``send_cycle +
   latency`` (a later epoch by construction), then return credits to the
   source side, re-arming stalled taps as next-cycle events.

Both flush loops run while every engine is stopped, and their order is
fixed (channels in declaration order, links port-ascending, messages in
send order), so the merged event interleaving -- and hence the run -- is
deterministic for any partitioning.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import CedarConfig
from repro.errors import SimulationError
from repro.hardware.engine import Engine
from repro.partition.boundary import BoundaryChannel


def lookahead_cycles(config: CedarConfig) -> int:
    """Minimum network traversal latency: the sound epoch length.

    Mirrors ``OmegaNetwork``'s stage-count derivation (enough
    ``switch_radix``-way stages to reach every port) times the per-stage
    latency.  The default machine has 2 stages × 1 cycle = 2.
    """
    ports = max(config.num_ces, config.global_memory.num_modules)
    radix = config.network.switch_radix
    stages = 1
    lines = radix
    while lines < ports:
        lines *= radix
        stages += 1
    return max(1, stages * config.network.stage_latency_cycles)


def _next_event_cycle(engine: Engine) -> Optional[int]:
    # Peeks the heap head (cycle of the earliest pending event).  Reading
    # the queue is safe here: the scheduler only calls this at barriers,
    # when no engine is running.
    queue = engine._queue
    return queue[0][0] if queue else None


class EpochScheduler:
    """Lockstep epoch driver for a set of partition engines.

    ``channels`` pairs each boundary direction with its source engine (the
    one whose taps feed it) and destination engine (the one that dispatches
    its deliveries).  Declaration order fixes the barrier flush order.
    """

    def __init__(
        self,
        engines: Sequence[Engine],
        channels: Sequence[Tuple[BoundaryChannel, Engine, Engine]],
        epoch_cycles: int,
        max_epochs: int = 10_000_000,
    ) -> None:
        if epoch_cycles < 1:
            raise SimulationError(
                f"epoch length must be >= 1 cycle, got {epoch_cycles}"
            )
        for channel, _source, _dest in channels:
            if channel.latency < epoch_cycles:
                raise SimulationError(
                    f"channel {channel.name} latency {channel.latency} < "
                    f"epoch length {epoch_cycles}: same-epoch delivery "
                    "would break the lookahead guarantee"
                )
        self.engines = list(engines)
        self.channels = list(channels)
        self.epoch_cycles = epoch_cycles
        self.max_epochs = max_epochs
        self.epochs_run = 0
        self.barrier_exchanges = 0

    def run(self, done: Callable[[], bool]) -> int:
        """Advance epochs until ``done()`` holds and the system drains.

        Returns the cycle at the final barrier.  Raises if the system goes
        globally inert (no pending events anywhere, nothing crossed the
        boundary, no credits owed) before ``done()`` -- the partitioned
        analogue of ``CedarMachine.run_kernel``'s deadlock error.
        """
        epoch = max(engine.now for engine in self.engines) // self.epoch_cycles
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.max_epochs:
                raise SimulationError(
                    f"exceeded {self.max_epochs} epochs without completing"
                )
            end = (epoch + 1) * self.epoch_cycles - 1
            for channel, _source, _dest in self.channels:
                channel.epoch = epoch
            for engine in self.engines:
                engine.run(until=end)
            progressed = self._barrier()
            self.epochs_run += 1
            if done() and self._quiescent():
                return end
            if not progressed and all(
                engine.pending() == 0 for engine in self.engines
            ):
                raise SimulationError(
                    "partitioned run stalled before completion: no pending "
                    "events and no boundary traffic at the barrier"
                )
            # Conservative fast-forward: epochs where no engine has an
            # event are provably inert (no events => no sends => empty
            # barriers), so jump straight to the epoch holding the next
            # event -- the partitioned analogue of idle fast-forward.
            pending = [
                cycle
                for cycle in map(_next_event_cycle, self.engines)
                if cycle is not None
            ]
            if pending:
                epoch = max(epoch + 1, min(pending) // self.epoch_cycles)
            else:
                epoch += 1

    def _barrier(self) -> bool:
        """Exchange staged messages and credits; True if anything moved."""
        progressed = False
        for channel, source, dest in self.channels:
            messages = channel.drain_outboxes()
            for message in messages:
                # Strictly future by the lookahead argument; scheduling is
                # legal because no engine is running at a barrier.
                dest.schedule(
                    message.send_cycle + channel.latency - dest.now,
                    partial(channel.deliver, message),
                )
            if messages:
                progressed = True
                self.barrier_exchanges += len(messages)
            credits = channel.take_returned_credits()
            if channel.apply_credits(credits, source):
                progressed = True
        return progressed

    def _quiescent(self) -> bool:
        return all(engine.pending() == 0 for engine in self.engines) and all(
            channel.idle() for channel, _source, _dest in self.channels
        )
