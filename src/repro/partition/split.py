"""Partitioned Cedar machines: the cut applied, three elaborations deep.

The machine splits along its natural seam -- clusters (CEs, caches,
prefetch units) plus the forward network on one side, interleaved
global-memory modules plus the reverse network on the other -- with all
cross-side traffic flowing through the boundary channels of
:mod:`repro.partition.boundary` under the epoch discipline of
:mod:`repro.partition.epochs`.  Three elaborations share that structure:

* :class:`FusedPartitionedMachine` -- one engine, the stock
  :class:`~repro.hardware.machine.CedarMachine` with the boundary fabrics
  injected through its delivery seams.  This is the reference: it proves
  the seam itself (machine.py wiring) and anchors the split-vs-fused
  byte-identity tests.
* :class:`SplitPartitionedMachine` -- two engines in one process, one per
  side, coupled *only* by the channels.  Identical results to the fused
  machine because within an epoch the sides touch disjoint state and the
  barrier flush order is fixed (the determinism argument of DESIGN.md
  §10).
* :class:`ProcessSplitMachine` -- the memory side moves to a worker
  process over a duplex pipe; parent and child simulate each epoch
  concurrently and exchange boundary messages + credits at the barrier.
  A dead worker surfaces as :class:`~repro.errors.WorkerCrashError`, and
  the parent accounts barrier-stall time (how long it blocked on the
  child) for the telemetry the CLI reports.

These machines are a *different elaboration* of the same hardware than
the single-engine ``CedarMachine``: the cut inserts the network's minimum
traversal latency at the boundary, so contended timings differ from the
direct wiring.  Fidelity experiments therefore keep the stock machine;
the partitioned elaborations are the foundation for machine-graph
distribution (ROADMAP item 3) and are verified against each other.
"""

from __future__ import annotations

# ProcessSplitMachine is the one audited fork seam outside the sanctioned
# runners: its epoch barrier delivers boundary messages in declared channel
# order, pinned byte-identical to the fused machine by test_partition.py.
import multiprocessing  # cedar: noqa[det.mp-scope]
import time
from functools import partial
from typing import Dict, List, Optional

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.errors import SimulationError, WorkerCrashError
from repro.hardware import sanitize
from repro.hardware.ce import ComputationalElement, KernelFactory
from repro.hardware.cluster import Cluster
from repro.hardware.engine import Engine
from repro.hardware.machine import CedarMachine, _default_sync_handler
from repro.hardware.memory import GlobalMemory
from repro.hardware.monitor import PerformanceMonitor
from repro.hardware.network import OmegaNetwork
from repro.partition.boundary import BoundaryChannel, SenderTap
from repro.partition.epochs import EpochScheduler, lookahead_cycles
from repro.trace import Tracer


def _ports(config: CedarConfig) -> int:
    return max(config.num_ces, config.global_memory.num_modules)


def _channel_capacity(config: CedarConfig) -> int:
    # Mirror the networks' own exit buffering: two port-queues deep.
    return 2 * config.network.port_queue_words


class ClusterSide:
    """The cluster partition: forward network, clusters, monitor."""

    def __init__(
        self,
        config: CedarConfig,
        request_channel: BoundaryChannel,
        reply_channel: BoundaryChannel,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.engine = Engine()
        sanitizer = sanitize.current()
        if sanitizer is not None:
            sanitizer.register_engine(self.engine)
        if tracer is None:
            tracer = Tracer(enabled=False)
        self.tracer = tracer
        self.engine.tracer = tracer.if_enabled()
        self.monitor = PerformanceMonitor(config.monitor)
        self.monitor.connect(tracer)
        ports = _ports(config)
        self.forward = OmegaNetwork(
            self.engine, ports, config.network, name="fwd", tracer=tracer
        )
        self.clusters: List[Cluster] = [
            Cluster(
                engine=self.engine,
                config=config,
                index=i,
                forward=self.forward,
                reverse=reply_channel,
                monitor=self.monitor,
                tracer=tracer,
            )
            for i in range(config.num_clusters)
        ]
        self.taps = [
            SenderTap(
                self.engine,
                self.forward.delivery_queue(port),
                request_channel.links[port],
            )
            for port in range(ports)
        ]

    @property
    def all_ces(self) -> List[ComputationalElement]:
        return [ce for cluster in self.clusters for ce in cluster.ces]

    def ces(self, count: int) -> List[ComputationalElement]:
        if not 1 <= count <= self.config.num_ces:
            raise SimulationError(
                f"machine has {self.config.num_ces} CEs, asked for {count}"
            )
        return self.all_ces[:count]


class MemorySide:
    """The memory partition: reverse network, global-memory modules."""

    def __init__(
        self,
        config: CedarConfig,
        request_channel: BoundaryChannel,
        reply_channel: BoundaryChannel,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.engine = Engine()
        sanitizer = sanitize.current()
        if sanitizer is not None:
            sanitizer.register_engine(self.engine)
        if tracer is None:
            tracer = Tracer(enabled=False)
        self.tracer = tracer
        self.engine.tracer = tracer.if_enabled()
        ports = _ports(config)
        self.reverse = OmegaNetwork(
            self.engine, ports, config.network, name="rev", tracer=tracer
        )
        self.global_memory = GlobalMemory(
            engine=self.engine,
            config=config.global_memory,
            sync_config=config.sync,
            forward=request_channel,
            reverse=self.reverse,
            sync_handler=_default_sync_handler,
            tracer=tracer,
        )
        self.taps = [
            SenderTap(
                self.engine,
                self.reverse.delivery_queue(port),
                reply_channel.links[port],
            )
            for port in range(ports)
        ]


class _EpochKernelMixin:
    """run_kernel over an epoch scheduler (shared by the three machines)."""

    config: CedarConfig
    scheduler: EpochScheduler

    def _cluster_engine(self) -> Engine:
        raise NotImplementedError

    def ces(self, count: int) -> List[ComputationalElement]:
        raise NotImplementedError

    def run_kernel(
        self, kernel: KernelFactory, num_ces: Optional[int] = None
    ) -> int:
        """Run one kernel factory on N CEs until all complete and drain."""
        selected = self.ces(num_ces or self.config.num_ces)
        done = {"remaining": len(selected), "at": 0}
        engine = self._cluster_engine()

        def one_done() -> None:
            done["remaining"] -= 1
            done["at"] = engine.now

        for ce in selected:
            ce.run(kernel, on_done=one_done)
        self.scheduler.run(done=lambda: done["remaining"] == 0)
        if done["remaining"] != 0:
            raise SimulationError(
                f"{done['remaining']} CEs never finished under the epoch "
                "scheduler (partition deadlock)"
            )
        return done["at"]

    @property
    def total_flops(self) -> float:
        return sum(ce.flops for ce in self.all_ces)  # type: ignore[attr-defined]


class FusedPartitionedMachine(_EpochKernelMixin):
    """One engine, boundary channels injected into the stock machine."""

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        ports = _ports(config)
        lookahead = lookahead_cycles(config)
        capacity = _channel_capacity(config)
        self.request_channel = BoundaryChannel(
            "bnd.req", ports, lookahead, capacity
        )
        self.reply_channel = BoundaryChannel(
            "bnd.rep", ports, lookahead, capacity
        )
        self.machine = CedarMachine(
            config,
            tracer,
            request_delivery=self.request_channel,
            reply_delivery=self.reply_channel,
        )
        engine = self.machine.engine
        self.taps = [
            SenderTap(
                engine,
                self.machine.forward.delivery_queue(port),
                self.request_channel.links[port],
            )
            for port in range(ports)
        ] + [
            SenderTap(
                engine,
                self.machine.reverse.delivery_queue(port),
                self.reply_channel.links[port],
            )
            for port in range(ports)
        ]
        self.scheduler = EpochScheduler(
            engines=[engine],
            channels=[
                (self.request_channel, engine, engine),
                (self.reply_channel, engine, engine),
            ],
            epoch_cycles=lookahead,
        )

    def _cluster_engine(self) -> Engine:
        return self.machine.engine

    @property
    def all_ces(self) -> List[ComputationalElement]:
        return self.machine.all_ces

    def ces(self, count: int) -> List[ComputationalElement]:
        return self.machine.ces(count)

    @property
    def monitor(self) -> PerformanceMonitor:
        return self.machine.monitor

    @property
    def global_memory(self) -> GlobalMemory:
        return self.machine.global_memory


class SplitPartitionedMachine(_EpochKernelMixin):
    """Cluster side and memory side on separate engines, one process."""

    def __init__(self, config: CedarConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        ports = _ports(config)
        lookahead = lookahead_cycles(config)
        capacity = _channel_capacity(config)
        self.request_channel = BoundaryChannel(
            "bnd.req", ports, lookahead, capacity
        )
        self.reply_channel = BoundaryChannel(
            "bnd.rep", ports, lookahead, capacity
        )
        self.cluster_side = ClusterSide(
            config, self.request_channel, self.reply_channel
        )
        self.memory_side = MemorySide(
            config, self.request_channel, self.reply_channel
        )
        self.scheduler = EpochScheduler(
            engines=[self.cluster_side.engine, self.memory_side.engine],
            channels=[
                (
                    self.request_channel,
                    self.cluster_side.engine,
                    self.memory_side.engine,
                ),
                (
                    self.reply_channel,
                    self.memory_side.engine,
                    self.cluster_side.engine,
                ),
            ],
            epoch_cycles=lookahead,
        )

    def _cluster_engine(self) -> Engine:
        return self.cluster_side.engine

    @property
    def all_ces(self) -> List[ComputationalElement]:
        return self.cluster_side.all_ces

    def ces(self, count: int) -> List[ComputationalElement]:
        return self.cluster_side.ces(count)

    @property
    def monitor(self) -> PerformanceMonitor:
        return self.cluster_side.monitor

    @property
    def global_memory(self) -> GlobalMemory:
        return self.memory_side.global_memory

    def partition_stats(self) -> List[Dict[str, object]]:
        return [
            {
                "partition": "cluster",
                "events_dispatched": self.cluster_side.engine.events_dispatched,
            },
            {
                "partition": "memory",
                "events_dispatched": self.memory_side.engine.events_dispatched,
            },
        ]


def _memory_side_main(conn, config: CedarConfig) -> None:
    """Worker-process loop: a passive memory side driven by the pipe.

    Protocol (parent -> child per epoch, then child -> parent):

    * ``("epoch", epoch, end, requests, reply_credits)`` -- boundary
      requests staged at the parent's previous barrier plus reply-channel
      credit returns; the child schedules/applies them, runs its engine to
      ``end``, and answers
    * ``("done", end, replies, request_credits, pending, next_cycle,
      idle, events)`` -- its epoch's staged replies, request-channel
      credit returns, and quiescence/fast-forward telemetry.
    * ``("stop",)`` ends the loop.
    """
    ports = _ports(config)
    lookahead = lookahead_cycles(config)
    capacity = _channel_capacity(config)
    request_channel = BoundaryChannel("bnd.req", ports, lookahead, capacity)
    reply_channel = BoundaryChannel("bnd.rep", ports, lookahead, capacity)
    request_channel.mark_remote()
    reply_channel.mark_remote()
    side = MemorySide(config, request_channel, reply_channel)
    engine = side.engine
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _tag, epoch, end, requests, reply_credits = message
            request_channel.epoch = epoch
            reply_channel.epoch = epoch
            # Same order as EpochScheduler._barrier flushes the memory
            # engine: request deliveries first, then reply-tap re-arms.
            for request in requests:
                engine.schedule(
                    request.send_cycle + request_channel.latency - engine.now,
                    partial(request_channel.deliver, request),
                )
            reply_channel.apply_credits(reply_credits, engine)
            engine.run(until=end)
            replies = reply_channel.drain_outboxes()
            request_credits = request_channel.take_returned_credits()
            queue = engine._queue
            conn.send(
                (
                    "done",
                    end,
                    replies,
                    request_credits,
                    engine.pending(),
                    queue[0][0] if queue else None,
                    reply_channel.idle(),
                    engine.events_dispatched,
                )
            )
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        conn.close()


class ProcessSplitMachine:
    """Memory side in a worker process; epochs overlap across the pipe.

    The parent runs its cluster epoch while the child runs the matching
    memory epoch, so on two cores the critical path per epoch is
    ``max(cluster, memory)`` work instead of their sum.  Exchange order at
    the barrier matches :class:`SplitPartitionedMachine` exactly
    (requests, then replies, port-ascending, send-order within a link), so
    both produce identical runs.
    """

    def __init__(self, config: CedarConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        ports = _ports(config)
        self.epoch_cycles = lookahead_cycles(config)
        capacity = _channel_capacity(config)
        self.request_channel = BoundaryChannel(
            "bnd.req", ports, self.epoch_cycles, capacity
        )
        self.reply_channel = BoundaryChannel(
            "bnd.rep", ports, self.epoch_cycles, capacity
        )
        self.request_channel.mark_remote()
        self.reply_channel.mark_remote()
        self.cluster_side = ClusterSide(
            config, self.request_channel, self.reply_channel
        )
        context = multiprocessing.get_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        self._conn = parent_conn
        self._process = context.Process(
            target=_memory_side_main,
            args=(child_conn, config),
            daemon=True,
            name="cedar-partition-memory",
        )
        self._process.start()
        child_conn.close()
        self.barrier_stall_seconds = 0.0
        self.remote_events_dispatched = 0
        self.epochs_run = 0
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        try:
            if self._process.is_alive():
                self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()

    def __enter__(self) -> "ProcessSplitMachine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _recv(self):
        """Blocking receive that surfaces a dead worker, timing the stall."""
        began = time.perf_counter()
        try:
            while not self._conn.poll(0.05):
                if not self._process.is_alive():
                    raise WorkerCrashError(
                        "partition:memory",
                        "memory-side worker died mid-epoch",
                        exitcode=self._process.exitcode,
                    )
            return self._conn.recv()
        except EOFError:
            raise WorkerCrashError(
                "partition:memory",
                "memory-side worker closed the pipe mid-epoch",
                exitcode=self._process.exitcode,
            ) from None
        finally:
            self.barrier_stall_seconds += time.perf_counter() - began

    # -- CE plumbing ---------------------------------------------------------

    @property
    def all_ces(self) -> List[ComputationalElement]:
        return self.cluster_side.all_ces

    def ces(self, count: int) -> List[ComputationalElement]:
        return self.cluster_side.ces(count)

    @property
    def monitor(self) -> PerformanceMonitor:
        return self.cluster_side.monitor

    @property
    def total_flops(self) -> float:
        return sum(ce.flops for ce in self.all_ces)

    # -- the overlapped epoch loop -------------------------------------------

    def run_kernel(
        self,
        kernel: KernelFactory,
        num_ces: Optional[int] = None,
        max_epochs: int = 10_000_000,
    ) -> int:
        selected = self.ces(num_ces or self.config.num_ces)
        done = {"remaining": len(selected), "at": 0}
        engine = self.cluster_side.engine

        def one_done() -> None:
            done["remaining"] -= 1
            done["at"] = engine.now

        for ce in selected:
            ce.run(kernel, on_done=one_done)

        pending_requests: List = []
        pending_reply_credits: List[tuple] = []
        epoch = engine.now // self.epoch_cycles
        iterations = 0
        while True:
            iterations += 1
            if iterations > max_epochs:
                raise SimulationError(
                    f"exceeded {max_epochs} epochs without completing"
                )
            end = (epoch + 1) * self.epoch_cycles - 1
            self.request_channel.epoch = epoch
            self.reply_channel.epoch = epoch
            # Ship the child everything it needs for this epoch, then both
            # sides simulate the same window concurrently.
            self._conn.send(
                ("epoch", epoch, end, pending_requests, pending_reply_credits)
            )
            engine.run(until=end)
            (
                _tag,
                _end,
                replies,
                request_credits,
                remote_pending,
                remote_next,
                remote_idle,
                remote_events,
            ) = self._recv()
            self.remote_events_dispatched = remote_events
            self.epochs_run += 1
            # Barrier, in the same order the in-process scheduler flushes:
            # request channel first, then replies.
            pending_requests = self.request_channel.drain_outboxes()
            self.request_channel.apply_credits(request_credits, engine)
            for reply in replies:
                engine.schedule(
                    reply.send_cycle + self.reply_channel.latency - engine.now,
                    partial(self.reply_channel.deliver, reply),
                )
            pending_reply_credits = self.reply_channel.take_returned_credits()
            if (
                done["remaining"] == 0
                and engine.pending() == 0
                and remote_pending == 0
                and remote_idle
                and not replies
                and not pending_requests
                and not pending_reply_credits
                and not self.request_channel.stalled_taps()
            ):
                return done["at"]
            # Fast-forward over epochs provably inert on both sides.  The
            # candidates must cover staged-but-unshipped boundary work --
            # requests deliver at send + latency and credit returns re-arm
            # taps at end + 1 -- or the jump could overshoot them.
            queue = engine._queue
            cycles = [c for c in (queue[0][0] if queue else None, remote_next)
                      if c is not None]
            if pending_requests:
                cycles.append(
                    min(m.send_cycle for m in pending_requests)
                    + self.request_channel.latency
                )
            if pending_reply_credits:
                cycles.append(end + 1)
            if cycles:
                epoch = max(epoch + 1, min(cycles) // self.epoch_cycles)
            else:
                epoch += 1
