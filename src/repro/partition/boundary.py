"""Boundary queues: the explicit cut between machine partitions.

Partitioned simulation (DESIGN.md §10) splits the machine at the two
places where packets cross between the cluster side and the memory side:

* **request channel** -- forward-network output lines → memory modules
  (replacing ``GlobalMemory``'s direct ``forward.delivery_queue(i)`` pull);
* **reply channel** -- reverse-network output lines → CE network ports
  (replacing ``NetworkPort``'s direct ``reverse.attach_sink`` wiring).

A :class:`BoundaryChannel` owns one direction of the cut: a
:class:`BoundaryLink` per port plus the receive-side delivery fabric.  The
fabric duck-types the two ``OmegaNetwork`` endpoint methods the hardware
actually uses -- ``delivery_queue(port)`` and ``attach_sink(port,
handler)`` -- so memory modules and CE ports wire up against a channel
without any signature change (see the injection seam in
:class:`~repro.hardware.machine.CedarMachine`).

Every message is stamped ``(epoch, seq)`` at send time and must arrive in
strictly increasing ``(epoch, seq)`` order per link -- the sanitizer's
``boundary.conservation`` invariant checks conservation and ordering
across the cut.  Flow control is credit-based: a link starts with
``capacity_words`` credits, sends debit them, and the receive side
accumulates returns (at delivery for sink ports, at pop for queue ports)
that travel back at the next epoch barrier.  A sender-side
:class:`SenderTap` pops packets off a source network's output line while
credits last and stalls otherwise, propagating back-pressure into the
network exactly as a busy memory module would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet
from repro.hardware.queueing import BoundedWordQueue


@dataclass(frozen=True)
class BoundaryMessage:
    """One packet crossing the partition cut, stamped for ordering."""

    port: int
    epoch: int
    seq: int
    send_cycle: int
    packet: Packet


class BoundaryLink:
    """One port's worth of one boundary direction (sender-half state).

    Credits measure receive-side buffer words the sender may still claim;
    they bound in-flight + queued words to ``capacity_words`` so the cut
    preserves the networks' bounded-queue discipline.
    """

    def __init__(
        self,
        channel: "BoundaryChannel",
        port: int,
        capacity_words: int,
    ) -> None:
        self.channel = channel
        self.port = port
        self.name = f"{channel.name}[{port}]"
        self.capacity_words = capacity_words
        self.credits = capacity_words
        #: True when the paired half lives in another process; the
        #: sanitizer then checks ordering only (conservation closes
        #: remotely) and skips the finalize balance for this link.
        self.remote = False
        self._seq = 0
        self._outbox: List[BoundaryMessage] = []

    def can_send(self, packet: Packet) -> bool:
        return packet.words <= self.credits

    def send(self, packet: Packet, cycle: int) -> BoundaryMessage:
        """Stamp and stage a packet; it crosses at the next barrier."""
        if packet.words > self.credits:
            raise SimulationError(
                f"boundary link {self.name} overcommitted: "
                f"{packet.words} words into {self.credits} credits"
            )
        self.credits -= packet.words
        self._seq += 1
        message = BoundaryMessage(
            port=self.port,
            epoch=self.channel.epoch,
            seq=self._seq,
            send_cycle=cycle,
            packet=packet,
        )
        sanitizer = self.channel.sanitizer
        if sanitizer is not None:
            sanitizer.boundary_sent(self, message)
        if not self._outbox:
            self.channel._dirty.append(self)
        self._outbox.append(message)
        return message


class SenderTap:
    """Drains a source network output line into a boundary link.

    Mirrors ``OmegaNetwork.attach_sink``'s pop-inside-listener discipline,
    but gated on link credits: with no credit for the head packet the tap
    stalls, leaving the packet queued so back-pressure reaches the
    crossbar.  When credits return at a barrier the scheduler arms
    :meth:`retry` as an ordinary engine event, so a stalled tap keeps the
    engine non-quiescent and drains during dispatch like any other
    component.
    """

    def __init__(
        self, engine: Engine, source: BoundedWordQueue, link: BoundaryLink
    ) -> None:
        self.engine = engine
        self.source = source
        self.link = link
        self.stalled = False
        link.channel.attach_tap(link.port, self)
        source.add_item_listener(self._drain)

    def _drain(self) -> None:
        source = self.source
        link = self.link
        while True:
            head = source.head()
            if head is None:
                self.stalled = False
                return
            if not link.can_send(head):
                self.stalled = True
                return
            link.send(source.pop(), self.engine.now)

    def retry(self) -> None:
        """Re-drain after credits returned (scheduled at the barrier)."""
        self._drain()


class _CreditQueue(BoundedWordQueue):
    """Receive-side buffer that returns link credits as words are popped."""

    def __init__(
        self, capacity_words: int, name: str, on_pop: Callable[[int], None]
    ) -> None:
        super().__init__(capacity_words, name)
        self._on_pop = on_pop

    def pop(self) -> Packet:
        packet = super().pop()
        self._on_pop(packet.words)
        return packet


class BoundaryChannel:
    """All links of one boundary direction, plus the delivery fabric.

    The same class serves both in-process use (both halves on one object)
    and cross-process use (each side instantiates the channel and uses
    only its half; :attr:`BoundaryLink.remote` marks the split halves for
    the sanitizer).
    """

    def __init__(
        self,
        name: str,
        num_ports: int,
        latency: int,
        capacity_words: int,
    ) -> None:
        if latency < 1:
            raise SimulationError(
                f"boundary latency must be >= 1 cycle, got {latency}"
            )
        self.name = name
        self.latency = latency
        #: Current epoch number, advanced by the scheduler; stamps sends.
        self.epoch = 0
        self.sanitizer = sanitize.current()
        self.links = [
            BoundaryLink(self, port, capacity_words) for port in range(num_ports)
        ]
        if self.sanitizer is not None:
            for link in self.links:
                self.sanitizer.register_boundary_link(link)
        self._dirty: List[BoundaryLink] = []
        self._taps: Dict[int, SenderTap] = {}
        self._queues: Dict[int, _CreditQueue] = {}
        self._sinks: Dict[int, Callable[[Packet], None]] = {}
        self._returned: Dict[int, int] = {}

    def mark_remote(self) -> None:
        """Declare the paired halves remote (cross-process transport)."""
        for link in self.links:
            link.remote = True

    # -- sender half ---------------------------------------------------------

    def attach_tap(self, port: int, tap: SenderTap) -> None:
        if port in self._taps:
            raise SimulationError(f"{self.name}[{port}] already has a tap")
        self._taps[port] = tap

    def drain_outboxes(self) -> List[BoundaryMessage]:
        """This epoch's sends, port-major then send-order (deterministic)."""
        messages: List[BoundaryMessage] = []
        for link in sorted(self._dirty, key=lambda link: link.port):
            messages.extend(link._outbox)
            link._outbox.clear()
        self._dirty.clear()
        return messages

    def apply_credits(self, credits: List[tuple], engine: Engine) -> bool:
        """Return words to sender links; re-arm any stalled taps.

        Called at the barrier (engines stopped), so the tap retry is
        scheduled as a next-cycle event rather than run inline -- sends
        stay inside engine dispatch, where the epoch stamp is current.
        """
        progressed = False
        for port, words in credits:
            link = self.links[port]
            link.credits += words
            progressed = True
            tap = self._taps.get(port)
            if tap is not None and tap.stalled:
                engine.schedule(1, tap.retry)
        return progressed

    def stalled_taps(self) -> List[SenderTap]:
        return [tap for tap in self._taps.values() if tap.stalled]

    # -- receiver half (duck-types the OmegaNetwork endpoint surface) --------

    def delivery_queue(self, port: int) -> BoundedWordQueue:
        """The receive buffer a pulling component (memory module) drains."""
        queue = self._queues.get(port)
        if queue is None:
            link = self.links[port]
            queue = _CreditQueue(
                link.capacity_words,
                name=f"{self.name}.in[{port}]",
                on_pop=lambda words, port=port: self._credit(port, words),
            )
            self._queues[port] = queue
        return queue

    def attach_sink(self, port: int, handler: Callable[[Packet], None]) -> None:
        """Deliver straight into ``handler`` (CE network ports)."""
        if port in self._sinks:
            raise SimulationError(f"{self.name}[{port}] already has a sink")
        self._sinks[port] = handler

    def deliver(self, message: BoundaryMessage) -> None:
        """Hand one crossed message to its endpoint (runs as an event)."""
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.boundary_delivered(self.links[message.port], message)
        sink = self._sinks.get(message.port)
        if sink is not None:
            self._credit(message.port, message.packet.words)
            sink(message.packet)
            return
        queue = self._queues.get(message.port)
        if queue is None:
            raise SimulationError(
                f"boundary delivery to unattached port {self.name}[{message.port}]"
            )
        queue.push(message.packet)

    def _credit(self, port: int, words: int) -> None:
        self._returned[port] = self._returned.get(port, 0) + words

    def take_returned_credits(self) -> List[tuple]:
        """Drain accumulated credit returns, port-ascending (deterministic)."""
        credits = sorted(self._returned.items())
        self._returned.clear()
        return credits

    # -- quiescence ----------------------------------------------------------

    def idle(self) -> bool:
        """No staged sends, no stalled taps, no pending credit returns."""
        return not self._dirty and not self._returned and not any(
            tap.stalled for tap in self._taps.values()
        )
