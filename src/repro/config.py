"""Machine configuration for the Cedar simulator and performance models.

Every number here is taken from Section 2 of the paper ("The Organization of
Cedar", ISCA 1993) or derived from it.  The configuration object is shared by
the cycle-level hardware simulator (:mod:`repro.hardware`) and the analytic
machine model (:mod:`repro.model`) so that both layers describe the same
machine.

Units: times are expressed in CE instruction cycles (one cycle = 170 ns)
unless a field name says otherwise; bandwidths in bytes per second; sizes in
bytes or 64-bit words as named.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional


#: CE instruction cycle time in seconds (170 ns, Section 2).
CE_CYCLE_SECONDS = 170e-9


def network_stages_for(ports: int, radix: int) -> int:
    """Stages of radix-``radix`` switches needed to connect ``ports`` lines.

    The single definition shared by :class:`CedarConfig`, the
    :class:`~repro.hardware.network.OmegaNetwork` constructor and the
    machine builder's routing-tag derivation -- an integer loop rather
    than ``ceil(log(ports, radix))`` so the three can never disagree on a
    float boundary (``log(64, 8)`` is not reliably ``2.0``).
    """
    stages, lines = 1, radix
    while lines < ports:
        lines *= radix
        stages += 1
    return stages

#: Peak 64-bit vector performance of a single CE in MFLOPS (Section 2).
CE_PEAK_MFLOPS = 11.8

#: Bytes per 64-bit word.
WORD_BYTES = 8


@dataclass(frozen=True)
class VectorUnitConfig:
    """Parameters of the Alliant CE vector unit.

    The CE implements register-memory vector instructions with eight 32-word
    vector registers.  Peak is one 64-bit result per cycle once the pipeline
    is full; the start-up penalty is what separates the 376 MFLOPS absolute
    peak from the paper's 274 MFLOPS "effective peak" for the rank-64 update.
    """

    num_registers: int = 8
    register_length: int = 32
    #: Pipeline start-up cycles charged to every vector instruction.  Chosen
    #: so that a 32-element vector operation runs at 274/376 of peak:
    #: 32 / (32 + startup) = 0.729 -> startup = 12 cycles.
    startup_cycles: int = 12
    #: Result elements produced per cycle in steady state.
    elements_per_cycle: int = 1
    #: Two arithmetic operations can be chained per memory request
    #: (Section 4.1, "All versions chain two operations per memory request").
    chained_ops_per_element: int = 2


@dataclass(frozen=True)
class CacheConfig:
    """Shared cluster cache (Section 2, "Alliant clusters")."""

    size_bytes: int = 512 * 1024
    line_bytes: int = 32
    interleave_ways: int = 4
    #: Outstanding misses allowed per CE (lockup-free, two misses).
    outstanding_misses_per_ce: int = 2
    #: Words the cache can supply per instruction cycle (eight 64-bit words,
    #: i.e. one word per CE per cycle with 8 CEs).
    words_per_cycle: int = 8
    write_back: bool = True
    #: Cache hit latency in CE cycles (pipelined; one vector stream/CE).
    hit_latency_cycles: int = 1


@dataclass(frozen=True)
class ClusterMemoryConfig:
    """Cluster memory behind the shared cache."""

    size_bytes: int = 32 * 1024 * 1024
    #: Cluster memory bandwidth is half the cache bandwidth (Section 2):
    #: 192 MB/s per cluster = 4 words per cycle.
    words_per_cycle: int = 4
    #: Miss service latency, cache line from cluster memory, in CE cycles.
    miss_latency_cycles: int = 6


@dataclass(frozen=True)
class NetworkConfig:
    """Cedar global interconnection networks (Section 2, "Global Network").

    Two unidirectional multistage shuffle-exchange networks (forward:
    processor -> memory, reverse: memory -> processor) built from 8x8
    crossbar switches with 64-bit-wide data paths, two-word queues on each
    input and output port, and flow control between stages.
    """

    switch_radix: int = 8
    #: Queue capacity, in packets-words, on each crossbar input/output port.
    port_queue_words: int = 2
    #: Words a switch port forwards per cycle.
    words_per_cycle: int = 1
    #: Minimum one-way first-word latency through network + memory + network
    #: observed by the prefetch monitor is 8 cycles (Section 4.1).  The
    #: simulator derives it from per-stage costs; this is the check value.
    min_first_word_latency_cycles: int = 8
    #: Per-stage switch traversal cost in cycles.
    stage_latency_cycles: int = 1
    #: Maximum payload words per packet (one to four 64-bit words, the first
    #: carrying routing/control and the memory address).
    max_packet_words: int = 4


@dataclass(frozen=True)
class GlobalMemoryConfig:
    """Globally shared memory (Section 2, "Memory Hierarchy")."""

    size_bytes: int = 64 * 1024 * 1024
    #: Number of independent memory modules; 32 double-word interleaved
    #: modules give the 768 MB/s system bandwidth at one word per module
    #: per ~2 cycles.
    num_modules: int = 32
    #: Module busy time per word access, in CE cycles.  The 768 MB/s figure
    #: is the interface (network-matched) peak; the DRAM of the era cycles
    #: in ~500 ns, i.e. 3 CE cycles per word, so sustained module
    #: throughput is ~2/3 of peak -- consistent with the paper's remark
    #: that memory-system characterization benchmarks observed maximum
    #: bandwidth well below peak [GJTV91].
    module_cycle_time: int = 3
    #: End-to-end latency budget: the paper quotes a 13-cycle global memory
    #: latency seen by a CE, of which 8 cycles are network+module minimum
    #: and the rest CE<->prefetch-buffer movement.
    ce_buffer_cycles: int = 5
    interleave_bytes: int = 8
    #: Memory modules carrying a synchronization processor (the first N
    #: modules); ``None`` means every module has one, the machine as
    #: built.  Exposed as a machine-builder knob so design-space sweeps
    #: can ask what a cheaper memory system costs the sync-heavy loops.
    sync_processors: Optional[int] = None

    @property
    def sync_processor_count(self) -> int:
        """Modules with a synchronization processor (defaults to all)."""
        if self.sync_processors is None:
            return self.num_modules
        return self.sync_processors

    @property
    def interleave_words(self) -> int:
        """Consecutive 64-bit words served by one module before the
        interleave advances to the next (1 = double-word interleave)."""
        return max(1, self.interleave_bytes // WORD_BYTES)


@dataclass(frozen=True)
class PrefetchConfig:
    """Per-CE data prefetch unit (Section 2, "Data Prefetch")."""

    buffer_words: int = 512
    #: Maximum requests issued without pausing (absent page crossings).
    max_outstanding: int = 512
    #: Cycles between successive address issues from an armed PFU.
    issue_interval_cycles: int = 1
    #: Compiler-generated prefetch block length in words (Section 3.2).
    compiler_block_words: int = 32
    #: Page size; a prefetch suspends at page boundaries because the PFU
    #: only has physical addresses (Section 2).
    page_bytes: int = 4096


@dataclass(frozen=True)
class ConcurrencyBusConfig:
    """Concurrency control bus (Section 2, "Alliant clusters")."""

    #: Cycles for a concurrent-start broadcast (fast fork): "a few
    #: microseconds" for CDOALL start (Section 3.2); 3 us ~= 18 cycles.
    concurrent_start_cycles: int = 18
    #: Cycles for a CE to self-schedule the next iteration within a cluster.
    self_schedule_cycles: int = 4
    #: Cycles for the join at loop end.
    join_cycles: int = 8


@dataclass(frozen=True)
class SyncConfig:
    """Memory-based synchronization (Section 2)."""

    #: Cycles the memory-module synchronization processor spends on one
    #: Test-And-Operate, beyond the normal module access.
    operate_cycles: int = 2
    #: Loop start-up latency for an XDOALL through global memory: 90 us.
    xdoall_startup_seconds: float = 90e-6
    #: Fetching the next XDOALL iteration: about 30 us.
    xdoall_iteration_fetch_seconds: float = 30e-6
    #: Iteration-fetch cost multiplier when Cedar Test-And-Operate
    #: instructions are NOT used by the runtime library (plain
    #: Test-And-Set spin loops need several global round trips).
    no_cedar_sync_fetch_multiplier: float = 4.0


@dataclass(frozen=True)
class VirtualMemoryConfig:
    """Xylem virtual memory (Section 2 and the TRFD study in Section 4.2)."""

    page_bytes: int = 4096
    tlb_entries: int = 64
    #: Cycles to service a TLB miss whose PTE is valid in global memory
    #: (the "extra faults" of the multicluster TRFD version).
    tlb_miss_cycles: int = 250
    #: Cycles for a hard page fault serviced by Xylem.
    page_fault_cycles: int = 12000


@dataclass(frozen=True)
class MonitorConfig:
    """External hardware performance monitoring (Section 2)."""

    tracer_capacity_events: int = 1_000_000
    histogrammer_counters: int = 64 * 1024
    counter_bits: int = 32


@dataclass(frozen=True)
class CedarConfig:
    """Full Cedar system configuration (defaults = the machine as built)."""

    num_clusters: int = 4
    ces_per_cluster: int = 8
    vector: VectorUnitConfig = field(default_factory=VectorUnitConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    cluster_memory: ClusterMemoryConfig = field(default_factory=ClusterMemoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    global_memory: GlobalMemoryConfig = field(default_factory=GlobalMemoryConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    ccb: ConcurrencyBusConfig = field(default_factory=ConcurrencyBusConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    vm: VirtualMemoryConfig = field(default_factory=VirtualMemoryConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)

    @property
    def num_ces(self) -> int:
        """Total computational elements in the system."""
        return self.num_clusters * self.ces_per_cluster

    @property
    def peak_mflops(self) -> float:
        """Absolute peak 64-bit vector MFLOPS (376 for the full machine)."""
        return self.num_ces * CE_PEAK_MFLOPS

    @property
    def effective_peak_mflops(self) -> float:
        """Peak after unavoidable vector start-up (274 MFLOPS, Section 4.1)."""
        reg = self.vector.register_length
        fraction = reg / (reg + self.vector.startup_cycles)
        return self.peak_mflops * fraction

    @property
    def network_stages(self) -> int:
        """Stages of 8x8 switches needed to connect CEs to memory modules."""
        ports = max(self.num_ces, self.global_memory.num_modules)
        return network_stages_for(ports, self.network.switch_radix)

    def with_clusters(self, num_clusters: int) -> "CedarConfig":
        """Return a copy of this configuration with a different cluster count."""
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        return replace(self, num_clusters=num_clusters)

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds to CE instruction cycles."""
        return seconds / CE_CYCLE_SECONDS

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert CE instruction cycles to wall-clock seconds."""
        return cycles * CE_CYCLE_SECONDS


#: The Cedar machine as described in the paper.
DEFAULT_CONFIG = CedarConfig()


# ---------------------------------------------------------------------------
# Ambient machine configuration.
#
# Experiment drivers and kernel harnesses default their ``config``
# parameter to "the active configuration" rather than binding
# ``DEFAULT_CONFIG`` at def time.  :func:`overriding` installs a different
# machine for a block -- how a serve job or a test runs the paper's
# experiments on a machine elaborated from a :class:`~repro.builder
# .MachineSpec` without threading a config through every call site.
# Worker processes forked inside the block (``--jobs``/``--partitions``)
# inherit the override, so sharded artifacts stay byte-identical.
# ---------------------------------------------------------------------------

_ACTIVE_CONFIGS: List[CedarConfig] = []


def active_config() -> CedarConfig:
    """The machine configuration call sites should default to.

    The innermost :func:`overriding` block wins; otherwise the paper's
    :data:`DEFAULT_CONFIG`.
    """
    if _ACTIVE_CONFIGS:
        return _ACTIVE_CONFIGS[-1]
    return DEFAULT_CONFIG


@contextmanager
def overriding(config: CedarConfig) -> Iterator[CedarConfig]:
    """Install ``config`` as the ambient machine for the block."""
    _ACTIVE_CONFIGS.append(config)
    try:
        yield config
    finally:
        _ACTIVE_CONFIGS.pop()
