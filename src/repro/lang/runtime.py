"""Run-time library semantics (Sections 3.1-3.2).

The Cedar run-time library starts, terminates and schedules parallel-loop
processors through global memory; the Cedar synchronization instructions
"have been mainly used in the implementation of the runtime library, where
they have proven useful to control loop self-scheduling".  The options here
select between the measured regimes of Table 3:

* ``use_cedar_sync`` -- Test-And-Operate based self-scheduling; turning it
  off makes every dynamic iteration fetch a multi-round-trip Test-And-Set
  spin (the "No Synchronization" column).
* ``use_prefetch`` -- compiler-inserted PFU blocks ahead of global-memory
  vector operands (the "No Prefetch" column removes them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class Schedule(enum.Enum):
    """How DOALL iterations are assigned to processors."""

    STATIC = "static"
    SELF = "self-scheduled"


@dataclass(frozen=True)
class RuntimeOptions:
    """Knobs of the run-time library + compiler back end."""

    use_cedar_sync: bool = True
    use_prefetch: bool = True
    schedule: Schedule = Schedule.SELF
    #: Confine execution to one cluster (a Perfect-rules option the paper
    #: used "in a few cases ... to avoid intercluster overhead").
    single_cluster: bool = False

    def without_cedar_sync(self) -> "RuntimeOptions":
        return replace(self, use_cedar_sync=False)

    def without_prefetch(self) -> "RuntimeOptions":
        return replace(self, use_prefetch=False)


#: The configuration used for the "Automatable" column of Table 3.
DEFAULT_OPTIONS = RuntimeOptions()
