"""The CEDAR FORTRAN programming model (Section 3).

Programs for the analytic machine model are built from the same constructs
the language exposes: DOALL loops in their three flavors (CDOALL within a
cluster, SDOALL across clusters, XDOALL across all processors), explicit
data placement (GLOBAL vs cluster memory vs loop-local), serial sections,
barriers, reductions and I/O.  The run-time library semantics -- loop
start-up latencies, self-scheduling with or without the Cedar
synchronization instructions -- live in :mod:`repro.lang.runtime`.
"""

from repro.lang.loops import (
    Barrier,
    DataMove,
    Doall,
    IOSection,
    LoopKind,
    Reduction,
    SerialSection,
    VirtualMemoryActivity,
    Work,
)
from repro.lang.placement import Placement
from repro.lang.program import Program, walk
from repro.lang.runtime import RuntimeOptions, Schedule

__all__ = [
    "Program",
    "walk",
    "Work",
    "Doall",
    "LoopKind",
    "SerialSection",
    "Barrier",
    "Reduction",
    "IOSection",
    "DataMove",
    "VirtualMemoryActivity",
    "Placement",
    "RuntimeOptions",
    "Schedule",
]
