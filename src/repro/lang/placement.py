"""Data placement attributes (Section 3.1, "Data Placement and Sharing").

"Data can be placed in either cluster or shared global memory on Cedar.  A
user can control this using a GLOBAL attribute.  Variable placement is in
cluster memory by default.  A variable can also be declared inside a
parallel loop.  The loop-local declaration of a variable makes a private
copy for each processor which is placed in cluster memory."
"""

from __future__ import annotations

import enum


class Placement(enum.Enum):
    """Where a loop's dominant data lives."""

    #: Shared global memory (the GLOBAL attribute): reachable by every CE,
    #: 13-cycle latency, prefetchable.
    GLOBAL = "global"
    #: Cluster memory: only CEs of the owning cluster may touch it.
    CLUSTER = "cluster"
    #: Loop-local (private per processor, placed in cluster memory); the
    #: paper found loop-local placement "an important factor in reducing
    #: data access latencies" in all Perfect programs.
    LOOP_LOCAL = "loop-local"

    @property
    def is_global(self) -> bool:
        return self is Placement.GLOBAL
