"""Program constructs of the CEDAR FORTRAN workload IR.

A program for the analytic machine model is a sequence of these constructs.
``Work`` describes straight-line computation in machine-neutral terms
(flops, memory words touched, vector character); the surrounding constructs
describe how that work is spread over the machine and what scheduling,
synchronization, I/O and data-movement costs it drags along.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from repro.lang.placement import Placement


class LoopKind(enum.Enum):
    """The three DOALL flavors (Section 3.2, "Parallel Loops")."""

    #: Schedules each iteration on any processor in the machine through
    #: global memory: ~90us startup, ~30us per iteration fetch.
    XDOALL = "xdoall"
    #: Schedules each iteration on an entire cluster; idle until a CDOALL
    #: inside the body spreads work within the cluster.
    SDOALL = "sdoall"
    #: Spreads iterations over one cluster's CEs via the concurrency
    #: control bus: starts in a few microseconds.
    CDOALL = "cdoall"


@dataclass(frozen=True)
class Work:
    """Straight-line computation, machine-neutral.

    Attributes:
        flops: Floating-point operations.
        memory_words: 64-bit words moved to/from the dominant memory level.
        vector_fraction: Fraction of the flops that vectorize.
        vector_length: Typical vector length (drives start-up amortization).
        scalar_memory_fraction: Fraction of the words accessed by scalar
            (non-vector, hence non-prefetchable) references.
    """

    flops: float
    memory_words: float
    vector_fraction: float = 0.9
    vector_length: int = 32
    scalar_memory_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.memory_words < 0:
            raise ValueError("work cannot be negative")
        for name in ("vector_fraction", "scalar_memory_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.vector_length < 1:
            raise ValueError("vector_length must be >= 1")

    def scaled(self, factor: float) -> "Work":
        """The same work profile scaled in volume."""
        return replace(
            self, flops=self.flops * factor, memory_words=self.memory_words * factor
        )


@dataclass(frozen=True)
class SerialSection:
    """Work executed by a single CE.

    In a restructured (parallel-layout) program the serial remainder still
    reads the arrays where the parallel loops put them -- a serial section
    over GLOBAL data pays global latency and benefits from prefetch, exactly
    like a loop body does.
    """

    work: Work
    placement: Placement = Placement.CLUSTER
    prefetchable_fraction: float = 0.5
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.prefetchable_fraction <= 1.0:
            raise ValueError("prefetchable_fraction must be in [0, 1]")


@dataclass(frozen=True)
class Doall:
    """A parallel loop.

    Attributes:
        kind: CDOALL / SDOALL / XDOALL.
        trip_count: Number of iterations.
        body: Work per iteration, or nested constructs (an SDOALL usually
            nests a CDOALL; see Section 3.2).
        placement: Where the dominant data of the body lives.
        self_scheduled: Iterations claimed dynamically (needs cheap
            synchronization) vs statically pre-assigned.
        prefetchable_fraction: Fraction of global-memory words the compiler
            can cover with PFU blocks (vector accesses with known stride).
        instances: How many times this loop starts dynamically over the run
            (each start pays the loop start-up latency).
        label: Diagnostic name.
    """

    kind: LoopKind
    trip_count: int
    body: Union[Work, Sequence[object]]
    placement: Placement = Placement.CLUSTER
    self_scheduled: bool = True
    prefetchable_fraction: float = 0.8
    instances: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise ValueError(f"trip count must be >= 1, got {self.trip_count}")
        if not 0.0 <= self.prefetchable_fraction <= 1.0:
            raise ValueError("prefetchable_fraction must be in [0, 1]")
        if self.instances < 1:
            raise ValueError(f"instances must be >= 1, got {self.instances}")

    @property
    def nested(self) -> bool:
        return not isinstance(self.body, Work)


@dataclass(frozen=True)
class Barrier:
    """A synchronization barrier.

    ``multicluster=True`` crosses clusters through global memory (the
    expensive FL052 case); otherwise the concurrency-control hardware in one
    cluster handles it.
    """

    multicluster: bool = True
    count: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("barrier count must be >= 1")


@dataclass(frozen=True)
class Reduction:
    """A global reduction of ``elements`` partial values."""

    elements: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise ValueError("reduction needs >= 1 element")


@dataclass(frozen=True)
class IOSection:
    """File input/output (the BDNA formatted-I/O story of Section 4.2)."""

    bytes: float
    formatted: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError("I/O volume cannot be negative")


@dataclass(frozen=True)
class VirtualMemoryActivity:
    """Extra paging / TLB-fault time incurred only by multicluster runs.

    Section 4.2's TRFD analysis found the multicluster version "spending
    close to 50% of the time in virtual memory activity" because each
    additional cluster TLB-miss faults on pages whose PTEs are already
    valid in global memory.  A distributed-memory rewrite removes it.
    """

    seconds: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("paging time cannot be negative")


@dataclass(frozen=True)
class DataMove:
    """An explicit block move between global and cluster memory."""

    words: float
    to_cluster: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ValueError("move volume cannot be negative")


Construct = Union[
    SerialSection,
    Doall,
    Barrier,
    Reduction,
    IOSection,
    DataMove,
    VirtualMemoryActivity,
]
