"""Whole programs in the CEDAR FORTRAN workload IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Union

from repro.errors import ProgramError
from repro.lang.loops import Construct, Doall, Work


@dataclass(frozen=True)
class Program:
    """A program: a named sequence of constructs.

    Attributes:
        name: Program name (e.g. a Perfect code).
        body: Top-level constructs, executed in order.
        flop_count: Canonical floating-point operation count of the whole
            program (the paper's monitor-derived count used for MFLOPS);
            defaults to the sum over the body when zero.
    """

    name: str
    body: Sequence[Construct]
    flop_count: float = 0.0

    def __post_init__(self) -> None:
        if not self.body:
            raise ProgramError(f"program {self.name!r} has an empty body")

    def total_flops(self) -> float:
        """The declared flop count, or the structural sum if undeclared."""
        if self.flop_count > 0:
            return self.flop_count
        return sum(_construct_flops(c) for c in self.body)


def walk(constructs: Sequence[Construct]) -> Iterator[Construct]:
    """Depth-first traversal of a construct sequence (nested DOALLs too)."""
    for construct in constructs:
        yield construct
        if isinstance(construct, Doall) and construct.nested:
            yield from walk(construct.body)  # type: ignore[arg-type]


def _construct_flops(construct: Construct) -> float:
    if isinstance(construct, Doall):
        if construct.nested:
            inner = sum(
                _construct_flops(c) for c in construct.body  # type: ignore[union-attr]
            )
            return construct.trip_count * inner
        assert isinstance(construct.body, Work)
        return construct.trip_count * construct.body.flops
    work = getattr(construct, "work", None)
    if isinstance(work, Work):
        return work.flops
    return 0.0
