"""Code-version fingerprinting for caches and result provenance.

The simulator is byte-deterministic for a *fixed* source tree, so a result
is identified by (experiment, config, code version).  The first two are
request data; this module supplies the third: a stable hash over every
``.py`` file of the installed :mod:`repro` package plus ``__version__``.
The serve tier folds it into content-addressed cache keys (stale results
become unreachable the moment the code changes), and ``run --json``
records and BENCH snapshots embed it so archived numbers say which code
produced them.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterator, Optional, Tuple

_cached: Optional[str] = None


def _package_root() -> str:
    return os.path.dirname(os.path.abspath(__file__))


def _source_files(root: str) -> Iterator[Tuple[str, str]]:
    """(relative posix path, absolute path) of every .py file, sorted."""
    found = []
    for directory, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                absolute = os.path.join(directory, name)
                relative = os.path.relpath(absolute, root).replace(os.sep, "/")
                found.append((relative, absolute))
    return iter(sorted(found))


def fingerprint_tree(root: str, version: str = "") -> str:
    """Hex digest over a source tree: (path, contents) pairs plus ``version``."""
    digest = hashlib.sha256()
    digest.update(version.encode("utf-8") + b"\x00")
    for relative, absolute in _source_files(root):
        digest.update(relative.encode("utf-8") + b"\x00")
        with open(absolute, "rb") as stream:
            digest.update(stream.read())
        digest.update(b"\x00")
    return digest.hexdigest()


def version_fingerprint(refresh: bool = False) -> str:
    """``<__version__>+<16 hex chars>`` identifying the installed code.

    Computed once per process and cached (the tree cannot change under a
    running interpreter in any way that matters to results); ``refresh``
    forces recomputation for tests.
    """
    global _cached
    if _cached is None or refresh:
        from repro import __version__

        digest = fingerprint_tree(_package_root(), __version__)
        _cached = f"{__version__}+{digest[:16]}"
    return _cached
