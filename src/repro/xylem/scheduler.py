"""Cluster allocation and gang scheduling.

A Cedar task asks Xylem for a number of clusters; within a cluster the
concurrency-control bus gang-schedules the CEs, but *clusters* are an OS
resource.  The paper's measurements were "collected in single-user mode to
avoid the non-determinism of multiprogramming"; the scheduler models both
regimes so that experiments can quantify what single-user mode avoided.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import SimulationError

_task_ids = itertools.count(1)


class TaskState(enum.Enum):
    WAITING = "waiting"
    RUNNING = "running"
    COMPLETE = "complete"


@dataclass
class Task:
    """One Cedar job: a cluster demand and a nominal execution time."""

    name: str
    clusters_wanted: int
    seconds: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    state: TaskState = TaskState.WAITING
    clusters_held: Set[int] = field(default_factory=set)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.clusters_wanted < 1:
            raise ValueError("a task needs at least one cluster")
        if self.seconds <= 0:
            raise ValueError("task time must be positive")

    @property
    def turnaround(self) -> float:
        if self.finished_at is None:
            raise SimulationError(f"task {self.name} has not finished")
        return self.finished_at


class ClusterScheduler:
    """First-come first-served cluster allocator with gang dispatch.

    Tasks receive *all* their clusters or none (a Cedar task's SDOALLs
    assume its clusters are simultaneously available -- gang scheduling at
    cluster granularity).  ``single_user=True`` admits one task at a time,
    reproducing the measurement regime of Section 4.2.
    """

    def __init__(self, num_clusters: int = 4, single_user: bool = False) -> None:
        if num_clusters < 1:
            raise ValueError("scheduler needs at least one cluster")
        self.num_clusters = num_clusters
        self.single_user = single_user
        self._free: Set[int] = set(range(num_clusters))
        self._queue: List[Task] = []
        self._running: List[Task] = []
        self.clock = 0.0
        self.completed: List[Task] = []

    # -- submission --------------------------------------------------------

    def submit(self, task: Task) -> Task:
        if task.clusters_wanted > self.num_clusters:
            raise SimulationError(
                f"task {task.name} wants {task.clusters_wanted} clusters; "
                f"machine has {self.num_clusters}"
            )
        self._queue.append(task)
        self._dispatch()
        return task

    def _dispatch(self) -> None:
        while self._queue:
            if self.single_user and self._running:
                return
            task = self._queue[0]
            if task.clusters_wanted > len(self._free):
                return  # FCFS: head of queue blocks (no backfilling)
            self._queue.pop(0)
            held = set(itertools.islice(iter(sorted(self._free)),
                                        task.clusters_wanted))
            self._free -= held
            task.clusters_held = held
            task.state = TaskState.RUNNING
            task.started_at = self.clock
            self._running.append(task)

    # -- time advance ---------------------------------------------------------

    def run_to_completion(self) -> float:
        """Advance time until every submitted task completes."""
        while self._running or self._queue:
            if not self._running:
                raise SimulationError("queued tasks can never be placed")
            next_task = min(
                self._running,
                key=lambda t: (t.started_at or 0.0) + t.seconds,
            )
            self.clock = (next_task.started_at or 0.0) + next_task.seconds
            self._finish(next_task)
        return self.clock

    def _finish(self, task: Task) -> None:
        task.state = TaskState.COMPLETE
        task.finished_at = self.clock
        self._running.remove(task)
        self._free |= task.clusters_held
        self.completed.append(task)
        self._dispatch()

    # -- metrics -----------------------------------------------------------------

    def makespan(self) -> float:
        return self.clock

    def utilization(self) -> float:
        """Cluster-seconds used over cluster-seconds available."""
        if self.clock <= 0:
            raise SimulationError("no time has elapsed")
        used = sum(t.clusters_wanted * t.seconds for t in self.completed)
        return used / (self.num_clusters * self.clock)
