"""The Xylem kernel facade: one object exporting the three service groups.

"Xylem exports virtual memory, scheduling, and file system services for
Cedar" [EABM91].  ``XylemKernel`` wires a scheduler, a memory manager and a
file system over one machine configuration, and offers the whole-job entry
point the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.xylem.filesystem import FileSystem, IORequest
from repro.xylem.memory_manager import MemoryManager
from repro.xylem.scheduler import ClusterScheduler, Task


@dataclass
class JobReport:
    """Accounting for one job run through the kernel."""

    task: Task
    io_seconds: float
    vm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.task.seconds + self.io_seconds + self.vm_seconds


class XylemKernel:
    """Virtual memory + scheduling + file system over one configuration."""

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        single_user: bool = True,
    ) -> None:
        self.config = config
        self.scheduler = ClusterScheduler(
            num_clusters=config.num_clusters, single_user=single_user
        )
        self.memory = MemoryManager(config)
        self.filesystem = FileSystem()

    def run_job(
        self,
        name: str,
        compute_seconds: float,
        clusters: int = 4,
        io_requests: Optional[List[IORequest]] = None,
        touched_segments: Optional[List[str]] = None,
    ) -> JobReport:
        """Admit, schedule and account one job.

        The job's compute phase is a scheduler task; its file transfers go
        through the file system; its first-touch VM costs come from walking
        the named segments on every cluster it holds.
        """
        io_seconds = sum(
            self.filesystem.transfer(request)
            for request in (io_requests or [])
        )
        task = Task(name=name, clusters_wanted=clusters,
                    seconds=compute_seconds)
        self.scheduler.submit(task)
        self.scheduler.run_to_completion()
        vm_cycles = 0
        for segment_name in touched_segments or []:
            for cluster in sorted(task.clusters_held):
                vm_cycles += self.memory.touch(cluster, segment_name)
        vm_seconds = self.config.cycles_to_seconds(vm_cycles)
        return JobReport(task=task, io_seconds=io_seconds,
                         vm_seconds=vm_seconds)
