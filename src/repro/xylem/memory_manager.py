"""Xylem virtual-memory management on top of the hardware VM.

Allocates segments in cluster or global memory (the physical address space
is split in half, Section 2), tracks page placement, and services faults
using the per-cluster TLB model -- giving OS-level accounting for the TRFD
analysis of [MaEG92].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import CedarConfig, DEFAULT_CONFIG, WORD_BYTES
from repro.errors import SimulationError
from repro.hardware.vm import VirtualMemory
from repro.lang.placement import Placement


@dataclass(frozen=True)
class Segment:
    """One allocated memory segment."""

    name: str
    start_word: int
    num_words: int
    placement: Placement

    @property
    def end_word(self) -> int:
        return self.start_word + self.num_words


class MemoryManager:
    """Segment allocation plus fault-cost accounting."""

    def __init__(self, config: CedarConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self.vm = VirtualMemory(config.vm, config.num_clusters)
        # Lower half of the physical space: cluster memory; upper: global.
        total_words = (
            config.cluster_memory.size_bytes * config.num_clusters
            + config.global_memory.size_bytes
        ) // WORD_BYTES
        self._global_base = total_words // 2
        self._next_cluster_word = 0
        self._next_global_word = self._global_base
        self.segments: Dict[str, Segment] = {}

    def allocate(self, name: str, num_words: int,
                 placement: Placement = Placement.CLUSTER) -> Segment:
        """Allocate a segment; global segments live in the upper half."""
        if num_words < 1:
            raise ValueError("segments need at least one word")
        if name in self.segments:
            raise SimulationError(f"segment {name!r} already allocated")
        page_words = self.vm.page_words
        if placement is Placement.GLOBAL:
            start = self._next_global_word
            self._next_global_word += -(-num_words // page_words) * page_words
            limit_words = (
                self._global_base
                + self.config.global_memory.size_bytes // WORD_BYTES
            )
            if self._next_global_word > limit_words:
                raise SimulationError("global memory exhausted")
        else:
            start = self._next_cluster_word
            self._next_cluster_word += -(-num_words // page_words) * page_words
            if self._next_cluster_word > self._global_base:
                raise SimulationError("cluster memory exhausted")
        segment = Segment(
            name=name, start_word=start, num_words=num_words,
            placement=placement,
        )
        self.segments[name] = segment
        return segment

    def is_global_address(self, word_address: int) -> bool:
        """Section 2: 'cluster memory is in the lower half and shared
        memory is in the upper half' of the physical address space."""
        return word_address >= self._global_base

    def touch(self, cluster: int, segment_name: str) -> int:
        """A cluster walks a whole segment; returns translation cycles."""
        segment = self._get(segment_name)
        return self.vm.touch_range(cluster, segment.start_word,
                                   segment.num_words)

    def fault_seconds(self, cluster: int) -> float:
        """Wall-clock spent in VM activity by one cluster so far."""
        cycles = self.vm.stats[cluster].cost_cycles(self.config.vm)
        return self.config.cycles_to_seconds(cycles)

    def multicluster_fault_ratio(self, segment_name: str) -> float:
        """Faults of a 4-cluster walk over a 1-cluster walk (TRFD's ~4x).

        Uses a fresh manager so the measurement is not polluted by prior
        touches.
        """
        def faults(clusters: int) -> int:
            manager = MemoryManager(self.config)
            segment = self._get(segment_name)
            manager.segments[segment_name] = segment
            for cluster in range(clusters):
                manager.touch(cluster, segment_name)
            totals = manager.vm.total_faults()
            return totals["page_faults"] + totals["tlb_miss_faults"]

        return faults(self.config.num_clusters) / faults(1)

    def _get(self, name: str) -> Segment:
        try:
            return self.segments[name]
        except KeyError:
            raise SimulationError(f"no segment named {name!r}") from None
