"""The Xylem operating system (Section 3, [EABM91]).

"All of these make use of the abstractions provided by the Xylem kernel
which links the four separate operating systems in Alliant clusters into
the Cedar OS.  Xylem exports virtual memory, scheduling, and file system
services for Cedar."

* :mod:`repro.xylem.scheduler` -- cluster allocation and gang scheduling of
  Cedar tasks (single-user mode vs multiprogramming).
* :mod:`repro.xylem.memory_manager` -- page placement and fault service on
  top of the hardware VM (per-cluster TLBs, PTEs in global memory).
* :mod:`repro.xylem.filesystem` -- file service through the interactive
  processors, the cost authority behind IOSection.
"""

from repro.xylem.filesystem import FileSystem, IORequest
from repro.xylem.kernel import XylemKernel
from repro.xylem.memory_manager import MemoryManager, Segment
from repro.xylem.scheduler import ClusterScheduler, Task, TaskState

__all__ = [
    "XylemKernel",
    "ClusterScheduler",
    "Task",
    "TaskState",
    "MemoryManager",
    "Segment",
    "FileSystem",
    "IORequest",
]
