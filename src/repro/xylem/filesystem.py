"""Xylem file-system services, staged through the interactive processors.

"The FX/8 also includes interactive processors (IPs) and IP caches.  IPs
perform input/output and various other tasks."  The file service is the
cost authority behind the workload IR's ``IOSection``: sequential transfers
run at the IP disk rate; *formatted* I/O converts every datum through
library code on a CE and is an order of magnitude slower -- the whole BDNA
story of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Sustained unformatted sequential transfer rate through an IP (bytes/s).
UNFORMATTED_BYTES_PER_SECOND = 4.0e6

#: Formatted I/O cost multiplier: each 8-byte datum is converted to/from
#: text by runtime library code (~tens of microseconds per value on a
#: 68020-class scalar unit).
FORMATTED_PENALTY = 18.0

#: Fixed per-request overhead (open/seek/OS path), seconds.
REQUEST_OVERHEAD_SECONDS = 2e-3


@dataclass(frozen=True)
class IORequest:
    """One logical file transfer."""

    byte_count: float
    formatted: bool = False
    write: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.byte_count < 0:
            raise ValueError("I/O volume cannot be negative")

    @property
    def seconds(self) -> float:
        rate = UNFORMATTED_BYTES_PER_SECOND
        if self.formatted:
            rate /= FORMATTED_PENALTY
        return REQUEST_OVERHEAD_SECONDS + self.byte_count / rate


class FileSystem:
    """Accounting file service: requests, bytes, and total time."""

    def __init__(self, num_ips: int = 4) -> None:
        if num_ips < 1:
            raise ValueError("need at least one interactive processor")
        self.num_ips = num_ips
        self.requests: List[IORequest] = []

    def transfer(self, request: IORequest) -> float:
        """Execute one request; returns its service time in seconds."""
        self.requests.append(request)
        return request.seconds

    def seconds_for(self, byte_count: float, formatted: bool = False) -> float:
        """Cost of a transfer without recording it (model queries)."""
        return IORequest(byte_count=byte_count, formatted=formatted).seconds

    @property
    def total_bytes(self) -> float:
        return sum(r.byte_count for r in self.requests)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.requests)

    def reformat_savings(self, byte_count: float) -> float:
        """Seconds saved by converting formatted I/O to unformatted.

        The BDNA fix: "The execution time for BDNA is reduced ... by simply
        replacing formatted with unformatted I/O."
        """
        return self.seconds_for(byte_count, formatted=True) - self.seconds_for(
            byte_count, formatted=False
        )
