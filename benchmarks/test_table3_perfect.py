"""Benchmark: regenerate Table 3 (Perfect Benchmarks version ladder)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table3
from repro.perfect.suite import code_names
from repro.perfect.targets import TARGETS
from repro.perfect.versions import Version


@pytest.mark.benchmark(group="table3")
def test_table3_perfect_ladder(benchmark):
    result = run_once(benchmark, table3.run)
    print("\n" + table3.render(result))

    for code in code_names():
        versions = result.grid[code]
        target = TARGETS[code]
        auto = versions[Version.AUTOMATABLE]
        assert auto.improvement == pytest.approx(
            target.auto_improvement, rel=0.25
        ), code
        assert versions[Version.KAP].improvement <= auto.improvement + 1e-9

    # "with the original compiler most programs have very limited
    # performance improvement": at least 8 of 13 KAP runs below 1.5x.
    limited = sum(
        1
        for code in code_names()
        if result.grid[code][Version.KAP].improvement < 1.5
    )
    assert limited >= 8

    # The YMP/Cedar harmonic-mean ratio favours the YMP (paper: 7.4; our
    # reconstruction lands lower -- see EXPERIMENTS.md).
    assert result.ymp_ratio() > 2.0
