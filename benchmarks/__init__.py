"""Benchmark package: one regenerating benchmark per paper artifact."""
