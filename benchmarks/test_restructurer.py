"""Benchmark: the Section 3.3 compiler comparison (KAP vs automatable)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import restructuring


@pytest.mark.benchmark(group="restructuring")
def test_restructuring_gallery(benchmark):
    result = run_once(benchmark, restructuring.run)
    print("\n" + restructuring.render(result))

    # 1988-KAP parallelizes only the dependence-free loop; the automatable
    # pipeline everything except the true recurrence.
    assert result.kap_count() == 1
    assert result.automatable_count() == len(result.rows) - 1

    transforms = " ".join(t for _, _, _, t in result.rows)
    for pass_name in ("privatization", "reductions", "induction",
                      "runtime-dependence-test", "balanced-stripmine",
                      "prefetch-insertion"):
        assert pass_name in transforms
