"""Benchmark: regenerate Table 4 (manually altered Perfect codes)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table4


@pytest.mark.benchmark(group="table4")
def test_table4_hand_optimizations(benchmark):
    result = run_once(benchmark, table4.run)
    print("\n" + table4.render(result))

    by_code = {row.code: row for row in result.rows}
    # Paper-quoted times (secs) and improvements over the no-sync base.
    assert by_code["ARC3D"].hand_seconds == pytest.approx(68.0, rel=0.2)
    assert by_code["BDNA"].hand_seconds == pytest.approx(70.0, rel=0.15)
    assert by_code["DYFESM"].hand_seconds == pytest.approx(31.0, rel=0.2)
    assert by_code["FLO52"].hand_seconds == pytest.approx(33.0, rel=0.2)
    assert by_code["QCD"].hand_seconds == pytest.approx(21.0, rel=0.15)
    assert by_code["SPICE"].hand_seconds == pytest.approx(26.0, rel=0.2)
    assert by_code["TRFD"].hand_seconds == pytest.approx(7.5, rel=0.15)

    assert by_code["QCD"].improvement == pytest.approx(11.4, rel=0.15)
    assert by_code["TRFD"].improvement == pytest.approx(2.8, rel=0.15)
    assert by_code["ARC3D"].improvement == pytest.approx(2.1, rel=0.15)
    assert by_code["BDNA"].improvement == pytest.approx(1.7, rel=0.15)
