"""Benchmark: the [Turn93] network ablation (Section 4.1's closing claim).

"this degradation is not inherent in the type of network used but is a
result of specific implementation constraints" -- relaxing queue depth and
module speed (topology unchanged) must recover a large part of the 32-CE
interarrival degradation.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import network_ablation


@pytest.mark.benchmark(group="network")
def test_network_ablation(benchmark):
    result = run_once(benchmark, network_ablation.run)
    print("\n" + network_ablation.render(result))

    points = result.by_name()
    built = points["as-built"]
    relaxed = points["both"]

    # The as-built machine shows real degradation at 32 CEs.
    assert built.interarrival > 1.5

    # Faster modules alone recover most of it; both constraints together
    # recover more than either topology-neutral tweak alone destroys.
    assert points["fast-modules"].interarrival < built.interarrival
    assert relaxed.interarrival < built.interarrival * 0.75
    assert relaxed.latency <= built.latency
