"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints the
artifact, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
whole evaluation section.  Cycle-level simulations are expensive; each
benchmark runs one round.
"""

import pytest


def run_once(benchmark, function):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
