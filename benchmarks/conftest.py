"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints the
artifact, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
whole evaluation section.  Cycle-level simulations are expensive; each
benchmark runs one round.

The harness self-profiles into a :class:`repro.metrics.MetricsRegistry`:
each :func:`run_once` records its wall-clock as a labeled gauge, and the
session summary prints the registry in Prometheus text format (pass
``--bench-metrics-out FILE`` to also write it to a file, e.g. for a
scrape-style CI artifact).
"""

import time

import pytest

from repro.metrics import MetricsRegistry, prometheus_text

_REGISTRY = MetricsRegistry()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-metrics-out",
        action="store",
        default=None,
        metavar="FILE",
        help="write the benchmark self-profile (Prometheus text) to FILE",
    )


def run_once(benchmark, function):
    """Run an experiment exactly once under the benchmark clock."""
    start = time.perf_counter()
    result = benchmark.pedantic(function, rounds=1, iterations=1)
    _REGISTRY.gauge(
        "bench_wall_seconds",
        {"benchmark": benchmark.name},
        help="wall-clock of each benchmark's single measured round",
    ).set(time.perf_counter() - start)
    return result


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not len(_REGISTRY):
        return
    text = prometheus_text(_REGISTRY)
    out = config.getoption("--bench-metrics-out")
    if out:
        with open(out, "w", encoding="utf-8") as stream:
            stream.write(text)
        terminalreporter.write_line(f"benchmark self-profile written to {out}")
        return
    terminalreporter.section("benchmark self-profile (Prometheus)")
    for line in text.splitlines():
        terminalreporter.write_line(line)
