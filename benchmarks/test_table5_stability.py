"""Benchmark: regenerate Table 5 (instability of the Perfect ensembles)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table5


@pytest.mark.benchmark(group="table5")
def test_table5_instability(benchmark):
    result = run_once(benchmark, table5.run)
    print("\n" + table5.render(result))

    # Paper values: Cedar 63.4 / 5.8; Cray 1 10.9 / 4.6;
    # Y-MP/8 75.3 / 29.0 / 5.3.
    assert result.profiles["cedar"][0] == pytest.approx(63.4, rel=0.10)
    assert result.profiles["cedar"][2] == pytest.approx(5.8, rel=0.10)
    assert result.profiles["cray-1"][0] == pytest.approx(10.9, abs=0.3)
    assert result.profiles["cray-1"][2] == pytest.approx(4.6, abs=0.3)
    assert result.profiles["cray-ymp8"][0] == pytest.approx(75.3, abs=0.3)
    assert result.profiles["cray-ymp8"][2] == pytest.approx(29.0, abs=0.3)
    assert result.profiles["cray-ymp8"][6] == pytest.approx(5.3, abs=0.3)

    # "two exceptions are sufficient on the Cray 1 and Cedar, whereas the
    # YMP needs six".
    assert result.exclusions_needed["cedar"] == 2
    assert result.exclusions_needed["cray-1"] == 2
    assert result.exclusions_needed["cray-ymp8"] == 6
