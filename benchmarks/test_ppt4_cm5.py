"""Benchmark: regenerate the PPT4 CM-5 comparison ([FWPS92] data)."""

import pytest

from benchmarks.conftest import run_once
from repro.baselines.cm5 import CM5Model
from repro.core.bands import Band
from repro.kernels.banded_matvec import BandedMatvec


def run_cm5():
    results = {}
    for bandwidth in (3, 11):
        for partition in (32, 256, 512):
            model = CM5Model(processors=partition)
            results[(bandwidth, partition)] = model.scalability_points(
                bandwidth, [16_384, 65_536, 262_144]
            )
    return results


@pytest.mark.benchmark(group="ppt4")
def test_ppt4_cm5_banded_matvec(benchmark):
    results = run_once(benchmark, run_cm5)

    # Quoted rate ranges at 32 processors.
    bw3 = [p.mflops for p in results[(3, 32)]]
    bw11 = [p.mflops for p in results[(11, 32)]]
    assert min(bw3) >= 27.0 and max(bw3) <= 33.0
    assert min(bw11) >= 57.0 and max(bw11) <= 68.0

    # "high performance was not achieved relative to 32, 256, or 512
    # processors"; "scalable intermediate performance".
    for key, points in results.items():
        for point in points:
            assert point.band is Band.INTERMEDIATE, (key, point)

    # Per-processor MFLOPS roughly equivalent to Cedar's CG (order 1-2).
    per_processor = results[(11, 32)][0].mflops / 32
    assert 1.0 <= per_processor <= 3.0
