"""Benchmark: regenerate Table 2 (global memory latency/interarrival).

Shape criteria: near-minimal (8-cycle latency, 1-cycle interarrival) at one
cluster for every kernel; monotone degradation with CE count; RK (256-word
blocks, aggressive overlap) degrades fastest; TM and CG degrade least.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table2


@pytest.mark.benchmark(group="table2")
def test_table2_global_memory(benchmark):
    result = run_once(benchmark, table2.run)
    print("\n" + table2.render(result))

    for kernel in table2.KERNELS:
        latency = result.latency_series(kernel)
        inter = result.interarrival_series(kernel)
        # Near-minimal at one cluster.
        assert latency[0] <= 14.0, kernel
        assert inter[0] <= 1.8, kernel
        # Contention grows with CE count.
        assert latency[2] > latency[0], kernel
        assert inter[2] > inter[0], kernel

    # RK suffers the worst interarrival degradation at 32 CEs...
    rk = result.interarrival_series("RK")[2]
    for gentler in ("TM", "CG"):
        assert rk >= result.interarrival_series(gentler)[2], gentler
    # ...and the register-register kernels beat the pure load stream.
    vl = result.interarrival_series("VL")[2]
    tm = result.interarrival_series("TM")[2]
    assert tm <= vl + 0.5
