"""Benchmark: the PPT5 scaled-Cedar study the paper deferred."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import ppt5_scaling


@pytest.mark.benchmark(group="ppt5")
def test_ppt5_scaled_reimplementation(benchmark):
    study = run_once(benchmark, lambda: ppt5_scaling.run((4, 8, 16)))
    print("\n" + ppt5_scaling.render(study))

    by_clusters = {p.clusters: p for p in study.points}
    # 128 CEs need a third switch stage; 64 still fit in two.
    assert by_clusters[4].network_stages == 2
    assert by_clusters[8].network_stages == 2
    assert by_clusters[16].network_stages == 3

    # With memory modules scaled alongside the CEs, the per-CE stream rate
    # holds up: the design (unlike the as-built constraints) rescales.
    assert study.rate_retention() >= 0.5
    assert study.passed

    # The extra stage costs latency but not proportional bandwidth.
    assert by_clusters[16].latency >= by_clusters[8].latency - 2.0
