"""Benchmark: regenerate the PPT4 Cedar-CG scalability study (Section 4.3).

Shape criteria: scalable high performance above a 10K-16K crossover at up
to 32 processors, intermediate below; no unacceptable points observed.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.bands import Band
from repro.experiments import ppt4_scalability


@pytest.mark.benchmark(group="ppt4")
def test_ppt4_cedar_cg(benchmark):
    study = run_once(benchmark, ppt4_scalability.run)
    print("\n" + ppt4_scalability.render(study))

    points = study.cedar.points
    assert points

    # No unacceptable performance was observed in the data gathered.
    assert all(p.band is not Band.UNACCEPTABLE for p in points)

    # High band for large problems at every processor count measured.
    for p in points:
        if p.problem_size >= 16_384:
            assert p.band is Band.HIGH, p

    # The 32-processor crossover to high performance lies at or below
    # the paper's "between 10K and 16K".
    at_32 = {p.problem_size: p for p in points if p.processors == 32}
    assert at_32[16_384].band is Band.HIGH
    smallest = min(at_32)
    assert at_32[smallest].efficiency < at_32[16_384].efficiency

    # PPT4 verdict: scalable across the measured processor range for
    # production-sized problems (the paper's claim is over "matrices
    # larger than something between 10K and 16K").
    assert study.cedar.scalable_processor_counts(
        min_problem_size=4_096
    ) == [8, 16, 32]

    # Rates grow with problem size at 32 CEs (34 -> 48 in the paper).
    low, high = study.cedar_mflops_at_32
    assert high > low
    assert 30.0 <= low <= 75.0
    assert 40.0 <= high <= 85.0
