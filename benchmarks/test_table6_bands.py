"""Benchmark: regenerate Table 6 (restructuring efficiency bands)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table6


@pytest.mark.benchmark(group="table6")
def test_table6_restructuring_efficiency(benchmark):
    result = run_once(benchmark, table6.run)
    print("\n" + table6.render(result))

    assert (result.cedar.high, result.cedar.intermediate,
            result.cedar.unacceptable) == (1, 9, 3)
    assert (result.ymp.high, result.ymp.intermediate,
            result.ymp.unacceptable) == (0, 6, 7)
