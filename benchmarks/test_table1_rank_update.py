"""Benchmark: regenerate Table 1 (rank-64 update MFLOPS).

Shape criteria from the paper: prefetch improves on the latency-bound
version by ~3.5x at one cluster, declining toward ~2x at four; the cache
version scales near-linearly to ~75% of the 274 MFLOPS effective peak; the
no-prefetch version saturates near 55 MFLOPS.
"""

import pytest

from benchmarks.conftest import run_once
from repro.config import DEFAULT_CONFIG
from repro.experiments import table1
from repro.kernels.rank_update import RankUpdateVersion


@pytest.mark.benchmark(group="table1")
def test_table1_rank_update(benchmark):
    result = run_once(benchmark, table1.run)
    print("\n" + table1.render(result))

    no_pref = result.mflops[RankUpdateVersion.GM_NO_PREFETCH]
    pref = result.mflops[RankUpdateVersion.GM_PREFETCH]
    cache = result.mflops[RankUpdateVersion.GM_CACHE]

    # GM/no-pref: latency bound, ~14.5 -> ~55, near-linear in clusters.
    assert 10.0 <= no_pref[0] <= 18.0
    assert 42.0 <= no_pref[3] <= 62.0

    # Prefetch effectiveness declines with cluster count.
    improvements = result.improvement_over_no_prefetch(
        RankUpdateVersion.GM_PREFETCH
    )
    assert improvements[0] > improvements[3]
    assert improvements[0] >= 2.5
    assert improvements[3] >= 1.5

    # The cache version wins everywhere and scales near-linearly.
    for pref_value, cache_value in zip(pref[1:], cache[1:]):
        assert cache_value > pref_value
    assert cache[3] / cache[0] == pytest.approx(4.0, rel=0.12)

    # ~75% of the 274 MFLOPS effective peak at four clusters.
    fraction = cache[3] / DEFAULT_CONFIG.effective_peak_mflops
    assert 0.6 <= fraction <= 0.9
