"""Benchmark: the [GJTV91] memory-characterization stride sweep."""

import pytest

from benchmarks.conftest import run_once
from repro.kernels.memory_characterization import stride_sweep


@pytest.mark.benchmark(group="characterization")
def test_stride_sweep_interleave_structure(benchmark):
    points = run_once(benchmark, lambda: stride_sweep((1, 2, 4, 8, 16, 32),
                                                      num_ces=8))
    for point in points:
        print(f"stride {point.stride:2d}: {point.modules_touched:2d} modules, "
              f"interarrival {point.interarrival:.2f}, "
              f"{point.megabytes_per_second_per_ce:.1f} MB/s/CE")

    by_stride = {p.stride: p for p in points}
    # Full interleave at stride 1; single-module collapse at stride 32.
    assert by_stride[1].modules_touched == 32
    assert by_stride[32].modules_touched == 1
    assert by_stride[32].interarrival > by_stride[1].interarrival * 2.5
    # Bandwidth is monotone non-increasing in interleave collapse.
    assert (
        by_stride[1].megabytes_per_second_per_ce
        >= by_stride[32].megabytes_per_second_per_ce
    )
