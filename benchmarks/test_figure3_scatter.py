"""Benchmark: regenerate Figure 3 (YMP/8 vs Cedar efficiency scatter)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure3


@pytest.mark.benchmark(group="figure3")
def test_figure3_efficiency_scatter(benchmark):
    result = run_once(benchmark, figure3.run)
    print("\n" + figure3.render(result))

    # "the 32-processor Cedar has about one-quarter high and
    # three-quarters intermediate ... Cedar has none [unacceptable]".
    assert result.cedar_census.unacceptable == 0
    assert 3 <= result.cedar_census.high <= 5
    assert result.cedar_census.intermediate >= 8

    # "The 8-processor YMP has about half high and half intermediate ...
    # the YMP has one unacceptable performance."
    assert result.ymp_census.high == 6
    assert result.ymp_census.intermediate == 6
    assert result.ymp_census.unacceptable == 1
